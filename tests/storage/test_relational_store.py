"""Unit tests for the relational storage substrate (relations, store, catalog, views)."""

import pytest

from repro.core.atoms import Atom
from repro.core.parser import parse_database
from repro.core.predicates import Predicate
from repro.core.terms import Constant
from repro.exceptions import StorageError, UnknownRelationError
from repro.storage.database import RelationalDatabase
from repro.storage.relation import Relation
from repro.storage.views import PrefixView

R = Predicate("R", 2)
S = Predicate("S", 1)


class TestRelation:
    def test_insert_and_scan(self):
        relation = Relation(R)
        relation.insert(("a", "b"))
        relation.insert_many([("b", "c"), ("c", "d")])
        assert len(relation) == 3
        assert list(relation.rows(limit=2)) == [("a", "b"), ("b", "c")]

    def test_arity_checked(self):
        with pytest.raises(StorageError):
            Relation(R).insert(("a",))

    def test_values_are_stringified(self):
        relation = Relation(R)
        relation.insert((1, 2))
        assert list(relation)[0] == ("1", "2")

    def test_insert_atom(self):
        relation = Relation(R)
        relation.insert_atom(Atom(R, (Constant("a"), Constant("b"))))
        assert list(relation.atoms()) == [Atom(R, (Constant("a"), Constant("b")))]
        with pytest.raises(StorageError):
            relation.insert_atom(Atom(S, (Constant("a"),)))

    def test_chunked_scan(self):
        relation = Relation(S)
        relation.insert_many([(str(i),) for i in range(10)])
        chunks = list(relation.chunks(4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert list(relation.chunks(4, limit=5))[-1] == [("4",)]
        with pytest.raises(StorageError):
            list(relation.chunks(0))

    def test_is_empty(self):
        assert Relation(R).is_empty()


class TestRelationalDatabase:
    def _store(self):
        store = RelationalDatabase("test")
        store.create_relation(R)
        store.create_relation(S)
        store.insert("R", ("a", "b"))
        store.insert("R", ("b", "b"))
        return store

    def test_create_is_idempotent_and_checks_arity(self):
        store = self._store()
        assert store.create_relation(R) is store.relation("R")
        with pytest.raises(StorageError):
            store.create_relation(Predicate("R", 3))

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            self._store().relation("T")
        with pytest.raises(UnknownRelationError):
            self._store().insert("T", ("a",))

    def test_catalog_reports_only_non_empty_relations(self):
        store = self._store()
        assert store.non_empty_predicates() == [R]
        assert set(store.relation_names()) == {"R", "S"}

    def test_counts(self):
        store = self._store()
        assert store.total_rows() == 2
        assert store.row_counts() == {"R": 2, "S": 0}

    def test_round_trip_with_core_database(self):
        database = parse_database("R(a,b).\nS(c).")
        store = RelationalDatabase.from_database(database)
        assert store.total_rows() == 2
        assert store.to_database() == database

    def test_insert_atom_creates_relation_on_demand(self):
        store = RelationalDatabase()
        store.insert_atom(Atom(R, (Constant("a"), Constant("b"))))
        assert "R" in store

    def test_drop_relation(self):
        store = self._store()
        store.drop_relation("R")
        assert "R" not in store
        store.drop_relation("R")  # idempotent


class TestPrefixView:
    def _store(self):
        store = RelationalDatabase("base")
        store.create_relation(R)
        store.create_relation(S)
        for index in range(10):
            store.insert("R", (f"a{index}", f"b{index}"))
        store.insert("S", ("s0",))
        return store

    def test_limits_rows_per_relation(self):
        view = PrefixView(self._store(), 3)
        assert view.total_rows() == 4  # 3 from R, 1 from S
        assert len(view.relation("R")) == 3
        assert view.row_counts()["R"] == 3

    def test_view_does_not_copy_or_mutate(self):
        store = self._store()
        view = PrefixView(store, 2)
        assert store.total_rows() == 11
        assert view.total_rows() == 3

    def test_catalog_respects_the_prefix(self):
        store = self._store()
        view = PrefixView(store, 0)
        assert view.non_empty_predicates() == []

    def test_to_database(self):
        view = PrefixView(self._store(), 1)
        database = view.to_database()
        assert len(database) == 2

    def test_predicate_restriction(self):
        view = PrefixView(self._store(), 5, predicates={"R"})
        assert view.relation_names() == ["R"]
        assert view.total_rows() == 5
        with pytest.raises(KeyError):
            view.relation("S")

    def test_restricted_to_builder(self):
        view = PrefixView(self._store(), 5).restricted_to([R])
        assert view.relation_names() == ["R"]
        assert len(view.schema()) == 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            PrefixView(self._store(), -1)
