"""Tests for the AtomStore protocol and its two implementations."""

import pytest

from repro.core.atoms import Atom
from repro.core.instances import Instance
from repro.core.parser import parse_database
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Null, Variable
from repro.exceptions import ValidationError
from repro.storage.atom_store import AtomStore
from repro.storage.database import RelationalDatabase
from repro.storage.relation import decode_value, encode_term

R = Predicate("R", 2)


class TestProtocol:
    def test_both_stores_implement_the_protocol(self):
        assert isinstance(Instance(), AtomStore)
        assert isinstance(RelationalDatabase(), AtomStore)


class TestTermEncoding:
    def test_constants_round_trip(self):
        assert decode_value(encode_term(Constant("a"))) == Constant("a")

    def test_nulls_round_trip(self):
        assert decode_value(encode_term(Null("n42"))) == Null("n42")

    def test_null_encoding_is_distinct_from_constants(self):
        assert encode_term(Null("a")) != encode_term(Constant("a"))

    def test_marker_shaped_constants_round_trip(self):
        # A constant whose own name looks like an encoded null (or an
        # escaped value) must not mutate into a Null on decode.
        for name in ("_:x", "_e:x", "_:_e:x", "_e:_:x"):
            assert decode_value(encode_term(Constant(name))) == Constant(name)
            assert decode_value(encode_term(Null(name))) == Null(name)

    def test_marker_shaped_constants_survive_the_store(self):
        store = RelationalDatabase()
        tricky = Atom(R, (Constant("_:x"), Null("x")))
        store.add_atom(tricky)
        assert store.has_atom(tricky)
        assert set(store.iter_atoms()) == {tricky}


class TestRelationalAtomStore:
    def test_add_atom_deduplicates(self):
        store = RelationalDatabase()
        atom = Atom(R, (Constant("a"), Constant("b")))
        assert store.add_atom(atom)
        assert not store.add_atom(atom)
        assert store.atom_count() == 1
        assert store.has_atom(atom)
        assert list(store.iter_atoms()) == [atom]

    def test_add_atom_rejects_non_ground(self):
        with pytest.raises(ValidationError):
            RelationalDatabase().add_atom(Atom(R, (Variable("x"), Constant("b"))))

    def test_nulls_survive_storage(self):
        store = RelationalDatabase()
        atom = Atom(R, (Constant("a"), Null("n1")))
        store.add_atom(atom)
        assert store.has_atom(atom)
        assert not store.has_atom(Atom(R, (Constant("a"), Constant("n1"))))
        assert store.to_instance() == Instance([atom])

    def test_cache_picks_up_raw_inserts(self):
        store = RelationalDatabase()
        store.create_relation(R)
        atom = Atom(R, (Constant("a"), Constant("b")))
        assert not store.has_atom(atom)
        store.insert("R", ("a", "b"))
        assert store.has_atom(atom)
        assert store.predicate_cardinality(R) == 1

    def test_atoms_matching_uses_position_bindings(self):
        store = RelationalDatabase.from_database(
            parse_database("R(a,b).\nR(a,c).\nR(b,c).")
        )
        hits = list(store.atoms_matching(R, {0: Constant("a")}))
        assert len(hits) == 2
        hits = list(store.atoms_matching(R, {0: Constant("a"), 1: Constant("c")}))
        assert hits == [Atom(R, (Constant("a"), Constant("c")))]
        assert list(store.atoms_matching(R, {1: Constant("z")})) == []
        assert list(store.atoms_matching(Predicate("S", 1), {0: Constant("a")})) == []

    def test_arity_mismatch_is_empty_not_error(self):
        store = RelationalDatabase.from_database(parse_database("R(a,b)."))
        assert list(store.atoms_matching(Predicate("R", 3))) == []
        assert store.predicate_cardinality(Predicate("R", 3)) == 0

    def test_drop_relation_clears_the_cache(self):
        store = RelationalDatabase.from_database(parse_database("R(a,b)."))
        atom = Atom(R, (Constant("a"), Constant("b")))
        assert store.has_atom(atom)
        store.drop_relation("R")
        assert not store.has_atom(atom)
        assert store.atom_count() == 0


class TestInstanceAtomStore:
    def test_atoms_matching(self):
        instance = Instance(parse_database("R(a,b).\nR(a,c).\nR(b,c).").atoms())
        hits = set(instance.atoms_matching(R, {0: Constant("a")}))
        assert hits == {
            Atom(R, (Constant("a"), Constant("b"))),
            Atom(R, (Constant("a"), Constant("c"))),
        }
        assert list(instance.atoms_matching(R, {0: Constant("z")})) == []
        assert set(instance.atoms_matching(R)) == set(instance.atoms())

    def test_index_is_maintained_incrementally_after_first_use(self):
        instance = Instance(parse_database("R(a,b).").atoms())
        assert len(list(instance.atoms_matching(R, {0: Constant("a")}))) == 1
        # The index for R is now built; later adds must keep it fresh.
        instance.add(Atom(R, (Constant("a"), Constant("z"))))
        assert len(list(instance.atoms_matching(R, {0: Constant("a")}))) == 2

    def test_predicate_cardinality(self):
        instance = Instance(parse_database("R(a,b).\nR(b,c).").atoms())
        assert instance.predicate_cardinality(R) == 2
        assert instance.predicate_cardinality(Predicate("S", 1)) == 0

    def test_term_index_is_incremental(self):
        instance = Instance()
        instance.add(Atom(R, (Constant("a"), Null("n1"))))
        assert instance.constants() == {Constant("a")}
        assert instance.nulls() == {Null("n1")}
        instance.add(Atom(R, (Constant("b"), Constant("a"))))
        assert instance.constants() == {Constant("a"), Constant("b")}
        assert instance.domain() == {Constant("a"), Constant("b"), Null("n1")}

    def test_copy_preserves_term_index_and_rebuilds_position_index(self):
        instance = Instance(parse_database("R(a,b).").atoms())
        list(instance.atoms_matching(R, {0: Constant("a")}))
        clone = instance.copy()
        assert clone.constants() == instance.constants()
        clone.add(Atom(R, (Constant("a"), Constant("x"))))
        assert len(list(clone.atoms_matching(R, {0: Constant("a")}))) == 2
        assert len(list(instance.atoms_matching(R, {0: Constant("a")}))) == 1
