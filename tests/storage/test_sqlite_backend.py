"""The SQL substrate beyond the store contract: persistence, pushdown, wiring.

The protocol-compliance tests live in ``test_store_contract.py``; this
module covers what is *specific* to the SQLite backend — files that survive
the process and resume a chase, the compiled-join trigger strategy, the
pushed-down ``FindShapes``, and the backend-spec parsing the CLI leans on.
"""

import os

import pytest

from repro.chase.engine import chase, make_backend_store
from repro.chase.matching import make_trigger_source
from repro.chase.parallel import parallel_chase
from repro.chase.result import ChaseLimits
from repro.core.atoms import Atom
from repro.core.instances import Instance
from repro.core.parser import parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Null
from repro.exceptions import StorageError
from repro.simplification.shapes import Shape
from repro.storage.database import RelationalDatabase
from repro.storage.shape_finder import InDatabaseShapeFinder
from repro.storage.sqlbackend import (
    SqliteAtomStore,
    SqliteOverlayStore,
    SqliteShapeFinder,
    shape_query_sqlite,
)
from repro.termination.linear import is_chase_finite_l
from tests.helpers import chase_result_fingerprint as fingerprint

R = Predicate("R", 2)

RULES = "R(x,y) -> S(y,z)\nS(x,y), R(z,x) -> T(z,y)\n"
FACTS = "R(a,b).\nR(b,a).\nR(b,c).\n"


def _program():
    return parse_database(FACTS), parse_rules(RULES)


class TestBackendSpecs:
    def test_known_backends(self, tmp_path):
        assert isinstance(make_backend_store("instance"), Instance)
        assert isinstance(make_backend_store("relational"), RelationalDatabase)
        memory = make_backend_store("sqlite")
        assert isinstance(memory, SqliteAtomStore) and not memory.is_persistent
        path = str(tmp_path / "chase.db")
        persistent = make_backend_store(f"sqlite:{path}")
        assert persistent.is_persistent and persistent.path == path

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown chase backend"):
            make_backend_store("oracle")

    def test_malformed_sqlite_spec_raises_value_error(self):
        with pytest.raises(ValueError, match="malformed sqlite backend spec"):
            make_backend_store("sqlite:")

    def test_unopenable_path_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="cannot open sqlite database"):
            SqliteAtomStore(path=str(tmp_path / "no" / "such" / "dir.db"))

    def test_non_database_file_raises_storage_error(self, tmp_path):
        # connect() is lazy, so a corrupt/non-database file only fails at
        # the first statement — that failure must share the StorageError
        # contract (and hence the CLI's one-line exit 2).
        bogus = tmp_path / "not-a-db.db"
        bogus.write_text("definitely not an sqlite file")
        with pytest.raises(StorageError, match="cannot open sqlite database"):
            SqliteAtomStore(path=str(bogus))

    def test_arity_conflict_is_rejected(self):
        store = SqliteAtomStore()
        store.add_atom(Atom(R, (Constant("a"), Constant("b"))))
        with pytest.raises(StorageError, match="already exists with arity"):
            store.create_relation(Predicate("R", 3))

    def test_case_sensitive_predicate_names_get_distinct_tables(self):
        # SQLite table names are case-insensitive, so without case-escaping
        # FOO/2 and Foo/2 would silently share one table (and Foo/3 would
        # crash on a missing column) — the in-memory backends keep them
        # distinct, and conformance demands the sqlite store does too.
        store = SqliteAtomStore()
        upper = Atom(Predicate("FOO", 2), (Constant("a"), Constant("b")))
        mixed = Atom(Predicate("Foo", 2), (Constant("x"), Constant("y")))
        caret = Atom(Predicate("^foo", 2), (Constant("p"), Constant("q")))
        for atom in (upper, mixed, caret):
            assert store.add_atom(atom)
        assert set(store.iter_atoms()) == {upper, mixed, caret}
        assert list(store.atoms_with_predicate(Predicate("FOO", 2))) == [upper]
        assert list(store.atoms_with_predicate(Predicate("Foo", 2))) == [mixed]
        # Differing arities under a case-folded name stay independent too.
        wide = Atom(Predicate("Bar", 3), tuple(Constant(c) for c in "abc"))
        store.add_atom(Atom(Predicate("BAR", 2), (Constant("a"), Constant("b"))))
        assert store.add_atom(wide)
        assert store.has_atom(wide)
        # Bound lookups (lazily indexed) respect the case split as well.
        assert list(store.atoms_matching(Predicate("Foo", 2), {1: Constant("y")})) == [mixed]
        assert list(store.atoms_matching(Predicate("FOO", 2), {1: Constant("y")})) == []


class TestPersistence:
    def test_reopened_file_restores_catalog_and_atoms(self, tmp_path):
        path = str(tmp_path / "atoms.db")
        atoms = {
            Atom(R, (Constant("a"), Null("n1"))),
            Atom(R, (Constant("_:tricky"), Constant("b"))),
            Atom(Predicate("Flag", 0), ()),
        }
        with SqliteAtomStore(path=path) as store:
            for atom in atoms:
                store.add_atom(atom)
            seq = store.current_seq()
        with SqliteAtomStore(path=path) as reopened:
            assert set(reopened.iter_atoms()) == atoms
            assert reopened.atom_count() == len(atoms)
            assert reopened.current_seq() == seq
            assert {p.name for p in reopened.predicates()} == {"R", "Flag"}

    def test_file_size_reflects_committed_atoms(self, tmp_path):
        path = str(tmp_path / "size.db")
        with SqliteAtomStore(path=path) as store:
            assert store.file_size() > 0  # schema pages
            for i in range(500):
                store.add_atom(Atom(R, (Constant(f"a{i}"), Constant(f"b{i}"))))
            grown = store.file_size()
            assert grown > 4096
        assert os.path.getsize(path) == grown
        assert SqliteAtomStore().file_size() == 0  # in-memory stores have no file

    def test_chase_into_file_survives_the_store(self, tmp_path):
        database, tgds = _program()
        path = str(tmp_path / "chase.db")
        result = chase(database, tgds, store=make_backend_store(f"sqlite:{path}"))
        result.store.close()
        with SqliteAtomStore(path=path) as reopened:
            assert set(reopened.iter_atoms()) == set(result.instance.atoms())

    def test_interrupted_chase_resumes_from_persisted_atoms(self, tmp_path):
        """A chase over a reopened file continues from the persisted prefix
        and lands on the same instance as an uninterrupted fresh run —
        null names included (content-addressed NullFactory)."""
        database, tgds = _program()
        fresh = chase(database, tgds)
        assert fresh.terminated

        path = str(tmp_path / "resume.db")
        partial = chase(
            database,
            tgds,
            store=make_backend_store(f"sqlite:{path}"),
            limits=ChaseLimits(max_rounds=1),
        )
        assert not partial.terminated
        assert len(partial.instance) < len(fresh.instance)
        partial.store.close()

        resumed = chase(database, tgds, store=SqliteAtomStore(path=path))
        assert resumed.terminated
        assert sorted(map(str, resumed.instance)) == sorted(map(str, fresh.instance))
        resumed.store.close()
        # And the resumed fixpoint is what the file now holds.
        with SqliteAtomStore(path=path) as reopened:
            assert reopened.atom_count() == len(fresh.instance)

    def test_budget_raise_still_persists_the_prefix(self, tmp_path):
        # on_limit='raise' must not roll back the open transaction: the
        # interrupted prefix is exactly what makes the file resumable.
        from repro.exceptions import ChaseLimitExceeded

        database, tgds = _program()
        path = str(tmp_path / "raise.db")
        store = make_backend_store(f"sqlite:{path}")
        with pytest.raises(ChaseLimitExceeded):
            chase(
                database,
                tgds,
                store=store,
                limits=ChaseLimits(max_rounds=1),
                on_limit="raise",
            )
        store.close()
        with SqliteAtomStore(path=path) as reopened:
            assert reopened.atom_count() > 0  # seed + round-1 atoms survived
        resumed = chase(database, tgds, store=SqliteAtomStore(path=path))
        fresh = chase(database, tgds)
        assert sorted(map(str, resumed.instance)) == sorted(map(str, fresh.instance))
        resumed.store.close()


class TestSqlTriggerStrategy:
    def test_sql_strategy_requires_the_sqlite_store(self):
        database, tgds = _program()
        source = make_trigger_source(tuple(tgds), "sql")
        with pytest.raises(ValueError, match="requires a SqliteAtomStore"):
            list(source.initial(Instance()))
        with pytest.raises(ValueError, match="unknown trigger strategy"):
            make_trigger_source(tuple(tgds), "psychic")
        # chase() validates eagerly, before any work is seeded.
        with pytest.raises(ValueError, match="requires\\s+the sqlite backend"):
            chase(database, tgds, strategy="sql")
        with pytest.raises(ValueError, match="requires\\s+the sqlite backend"):
            chase(database, tgds, strategy="sql", backend="relational")

    @pytest.mark.parametrize("variant", ["oblivious", "semi-oblivious", "restricted"])
    def test_sql_strategy_matches_the_in_memory_engines(self, variant):
        database, tgds = _program()
        expected = fingerprint(chase(database, tgds, variant=variant))
        pushed = chase(database, tgds, variant=variant, strategy="sql", backend="sqlite")
        assert fingerprint(pushed) == expected

    def test_sql_strategy_under_a_budget_stops_at_the_same_round(self):
        database, tgds = _program()
        limits = ChaseLimits(max_atoms=4)
        expected = fingerprint(chase(database, tgds, limits=limits))
        pushed = chase(database, tgds, strategy="sql", backend="sqlite", limits=limits)
        assert fingerprint(pushed) == expected

    def test_delta_watermark_survives_bulk_load_seq_gaps(self):
        # add_atoms consumes a seq for ignored duplicate rows; the snapshot
        # watermark must still see every genuinely-new row as delta (the
        # old `current_seq - len(delta)` arithmetic silently dropped them).
        database, tgds = _program()
        store = SqliteAtomStore()
        old = Atom(R, (Constant("a"), Constant("b")))
        store.add_atom(old)
        source = make_trigger_source(tuple(tgds), "sql")
        list(source.initial(store))  # snapshot after the seed
        fresh = Atom(R, (Constant("p"), Constant("q")))
        store.add_atoms([fresh, old])  # duplicate burns a seq: gap at the top
        triggers = list(source.delta(store, [fresh]))
        fired = {str(t.homomorphism) for t in triggers}
        assert any("p" in h for h in fired), fired

    def test_delta_skips_queries_for_predicates_outside_the_delta(self):
        # Semi-naive dispatch: a round whose delta holds no atom over a
        # query's seed predicate must not execute that query at all.
        database, tgds = _program()
        store = SqliteAtomStore.from_database(database)
        source = make_trigger_source(tuple(tgds), "sql")
        executed = []
        store.connection.set_trace_callback(
            lambda statement: executed.append(statement)
        )
        unrelated = [Atom(Predicate("Unrelated", 1), (Constant("a"),))]
        store.add_atoms(unrelated)
        executed.clear()
        assert list(source.delta(store, unrelated)) == []
        assert [s for s in executed if s.lstrip().upper().startswith("SELECT")] == []
        store.connection.set_trace_callback(None)

    def test_parallel_chase_on_sqlite_backend(self):
        database, tgds = _program()
        expected = fingerprint(chase(database, tgds))
        for executor in ("serial", "thread", "process"):
            result = parallel_chase(
                database, tgds, workers=2, backend="sqlite", executor=executor
            )
            assert fingerprint(result) == expected, executor
            assert isinstance(result.store, SqliteAtomStore)

    def test_thread_pool_over_a_committed_store(self, tmp_path):
        # A reopened (fully committed) store enters the thread pool with no
        # transaction open, so the worker threads' first lazy-index writes
        # race through _begin — the connection lock must serialise them.
        from repro.core.instances import Database

        database, tgds = _program()
        expected = fingerprint(chase(database, tgds))
        path = str(tmp_path / "warm.db")
        with SqliteAtomStore.from_database(database, path=path) as store:
            store.flush()
        reopened = SqliteAtomStore(path=path)
        result = parallel_chase(
            Database(), tgds, workers=4, store=reopened, executor="thread"
        )
        assert fingerprint(result) == expected
        reopened.close()


class TestSqliteShapeFinder:
    DATA = "R(a,a).\nR(a,b).\nS(a,b,a).\nS(c,c,c).\nP(a).\n"

    def test_matches_the_in_database_finder_without_scanning_rows(self):
        database = parse_database(self.DATA)
        reference = InDatabaseShapeFinder(RelationalDatabase.from_database(database))
        pushed = SqliteShapeFinder(SqliteAtomStore.from_database(database))
        assert pushed.find_shapes() == reference.find_shapes()
        assert pushed.stats.rows_scanned == 0
        assert pushed.stats.queries_issued > 0

    def test_rejects_other_stores(self):
        with pytest.raises(TypeError, match="requires a SqliteAtomStore"):
            SqliteShapeFinder(RelationalDatabase())

    def test_rendered_query_shape(self):
        shape = Shape("R", (1, 1, 2))
        exact = shape_query_sqlite(shape)
        assert '"rel_^r"' in exact and "c0 = c1" in exact
        assert "!=" in exact
        relaxed = shape_query_sqlite(shape, relaxed=True)
        assert "!=" not in relaxed

    def test_feeds_is_chase_finite_l(self):
        database = parse_database(self.DATA)
        tgds = "R(x,y) -> S(y,x,z)\nS(x,y,z) -> P(y)\n"
        expected = is_chase_finite_l(database, tgds).finite
        finder = SqliteShapeFinder(SqliteAtomStore.from_database(database))
        assert is_chase_finite_l(finder, tgds).finite == expected

    def test_shapes_of_chased_store_include_null_identities(self):
        # Shapes are computed over the *encoded* rows, so a null equal to
        # itself in two columns is the same shape signal on every backend.
        database, tgds = _program()
        result = chase(database, tgds, backend="sqlite")
        pushed = SqliteShapeFinder(result.store).find_shapes()
        reference = InDatabaseShapeFinder(
            RelationalDatabase.from_database(result.instance)
        ).find_shapes()
        assert pushed == reference


class TestSqliteOverlayStore:
    """The read-only-attach overlay the out-of-core process workers run on."""

    def _base(self, tmp_path):
        path = str(tmp_path / "base.db")
        store = SqliteAtomStore(path=path, name="base")
        store.load_database(parse_database(FACTS))
        store.flush()
        return path, store

    def test_base_atoms_read_through_the_overlay(self, tmp_path):
        path, base = self._base(tmp_path)
        overlay = SqliteOverlayStore(path)
        assert overlay.atom_count() == base.atom_count()
        assert set(overlay.iter_atoms()) == set(base.iter_atoms())
        assert overlay.predicate_cardinality(R) == base.predicate_cardinality(R)
        assert set(overlay.atoms_matching(R, {0: Constant("b")})) == set(
            base.atoms_matching(R, {0: Constant("b")})
        )
        overlay.close()
        base.close()

    def test_overlay_writes_never_touch_the_base_file(self, tmp_path):
        path, base = self._base(tmp_path)
        seed_count = base.atom_count()
        overlay = SqliteOverlayStore(path)
        delta = Atom(R, (Constant("z"), Null("nz")))
        assert overlay.add_atom(delta)
        assert overlay.has_atom(delta)
        assert overlay.atom_count() == seed_count + 1
        # Unioned reads cover both sides of the same predicate.
        assert delta in set(overlay.atoms_with_predicate(R))
        assert len(set(overlay.atoms_with_predicate(R))) == seed_count + 1
        overlay.close()
        base.close()
        with SqliteAtomStore(path=path) as reopened:
            assert reopened.atom_count() == seed_count
            assert not reopened.has_atom(delta)

    def test_add_atom_deduplicates_against_the_base_snapshot(self, tmp_path):
        path, base = self._base(tmp_path)
        existing = next(iter(base.iter_atoms()))
        overlay = SqliteOverlayStore(path)
        assert not overlay.add_atom(existing)
        assert overlay.add_atoms([existing, Atom(R, (Constant("q"), Constant("r")))]) == 1
        assert overlay.atom_count() == base.atom_count() + 1
        overlay.close()
        base.close()

    def test_snapshot_isolation_from_coordinator_commits(self, tmp_path):
        # The coordinator keeps committing merged rounds to the file while
        # workers run; an overlay opened before those commits must not see
        # them (the replica semantics the deterministic merge relies on).
        path, base = self._base(tmp_path)
        overlay = SqliteOverlayStore(path)
        late = Atom(R, (Constant("late"), Constant("late")))
        base.add_atom(late)
        base.flush()
        assert not overlay.has_atom(late)
        assert late not in set(overlay.atoms_with_predicate(R))
        assert overlay.atom_count() == base.atom_count() - 1
        # ... but the overlay's own copy of the atom is a fresh delta.
        assert overlay.add_atom(late)
        assert overlay.has_atom(late)
        overlay.close()
        base.close()

    def test_partitions_cover_both_sides(self, tmp_path):
        path, base = self._base(tmp_path)
        overlay = SqliteOverlayStore(path)
        overlay.add_atom(Atom(R, (Constant("p"), Constant("q"))))
        everything = set(overlay.atoms_with_predicate(R))
        seen = []
        for index in range(3):
            seen.extend(overlay.atoms_partition(R, (0,), 3, index))
        assert set(seen) == everything
        assert len(seen) == len(everything)
        overlay.close()
        base.close()

    def test_missing_base_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="cannot attach base"):
            SqliteOverlayStore(str(tmp_path / "nowhere" / "base.db"))

    def test_base_path_with_uri_metacharacters(self, tmp_path):
        # Regression: the read-only ATTACH goes through a file: URI, so a
        # literal '#', '?', '%', or space in the path must be
        # percent-encoded or SQLite attaches the wrong file.
        odd_dir = tmp_path / "odd dir#1 %x?y"
        odd_dir.mkdir()
        path = str(odd_dir / "base.db")
        store = SqliteAtomStore(path=path)
        store.load_database(parse_database(FACTS))
        store.flush()
        overlay = SqliteOverlayStore(path)
        assert overlay.atom_count() == store.atom_count()
        overlay.close()
        store.close()

    def test_parallel_process_chase_over_a_persistent_file_is_identical(self, tmp_path):
        # The end-to-end overlay path: process workers attach the
        # coordinator's file read-only, ship zero seed atoms, and the
        # ChaseResult stays byte-identical to the serial engine's.
        database, tgds = _program()
        expected = fingerprint(chase(database, tgds))
        store = make_backend_store(f"sqlite:{tmp_path / 'parallel.db'}")
        result = parallel_chase(
            database, tgds, workers=3, store=store, executor="process"
        )
        assert fingerprint(result) == expected
        store.close()
