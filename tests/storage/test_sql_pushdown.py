"""The ``sql-pushdown`` strategy beyond conformance: plans, pragmas, wiring.

The byte-identity of pushdown results is established differentially in
``tests/property/test_conformance.py`` and the edge-case grid; this module
pins what those suites cannot see from the outside:

* **query plans** — ``EXPLAIN QUERY PLAN`` over the compiled statements must
  show every relation access as an index search (the whole point of the
  strategy is set-based index joins; a silent ``SCAN`` on a relation table
  would be a performance regression, not a correctness one);
* **skolem determinism** — the in-SQL null-inventing UDF mints exactly the
  name :class:`~repro.core.terms.NullFactory` would for the same key;
* **pragma tuning** — the connection settings the strategy leans on, and
  the proof that the tuned file stores still survive a mid-chase crash and
  resume to the same fixpoint;
* **wiring** — the strategy is reachable only through the sqlite backend,
  serially and in parallel, with actionable errors everywhere else.
"""

import pytest

from repro.chase.engine import chase, make_backend_store
from repro.chase.matching import make_trigger_source
from repro.chase.parallel import parallel_chase
from repro.chase.result import ChaseLimits
from repro.core.parser import parse_database, parse_rules
from repro.core.terms import Constant, NullFactory, Variable
from repro.exceptions import ChaseLimitExceeded
from repro.storage.relation import NULL_MARKER, encode_term
from repro.storage.sqlbackend import (
    CompiledPlanQuery,
    CompiledRule,
    PushdownExecutor,
    SqliteAtomStore,
    register_skolem_function,
)

from tests.helpers import chase_result_fingerprint as fingerprint

#: A join-body program (takes the delta-round tier: S ⋈ R is a two-atom body).
JOIN_RULES = "R(x,y) -> S(y,z)\nS(x,y), R(z,x) -> T(z,y)\n"
JOIN_FACTS = "R(a,b).\nR(b,a).\nR(b,c).\n"

#: A linear program (every body a single atom: eligible for the CTE tier).
LINEAR_RULES = "R(x,y) -> S(y,z)\nS(x,y) -> T(x)\n"
LINEAR_FACTS = "R(a,b).\nR(b,b).\n"


def _join_program():
    return parse_database(JOIN_FACTS), parse_rules(JOIN_RULES)


def _linear_program():
    return parse_database(LINEAR_FACTS), parse_rules(LINEAR_RULES)


def _plan_details(store, sql, parameters):
    """The ``detail`` column of ``EXPLAIN QUERY PLAN`` for *sql*."""
    rows = store.query("EXPLAIN QUERY PLAN " + sql, parameters)
    return [row[-1] for row in rows]


def _assert_no_relation_scan(details, label):
    """Every relation access must be an index search.

    ``SCAN w`` over the per-rule temp *stage* table is the one expected scan
    (it holds exactly the round's firing keys); anything else scanning —
    a ``t{slot}``/``h{slot}`` alias or a ``rel_`` table — means a compiled
    join degraded to a full table walk.
    """
    for detail in details:
        if not detail.startswith("SCAN"):
            continue
        assert detail.startswith("SCAN w"), (
            f"{label}: relation access degraded to a table scan: {detail!r}\n"
            f"full plan: {details}"
        )


class TestCompiledQueryPlans:
    """``EXPLAIN QUERY PLAN`` regression: compiled joins stay index-backed."""

    @pytest.fixture()
    def bound_rule(self):
        # A two-atom body with a join variable in a non-leading position
        # (x2 joins Q.c1 to R.c0) plus an existential head — the restricted
        # variant compiles every statement family: two seed-slot stagings,
        # the NOT EXISTS firing filter, and the head insert.
        database = parse_database("Q(a,b).\nR(b,c).\nS(a,c,d).\n")
        tgds = parse_rules("Q(x1,x2), R(x2,x3) -> S(x1,x3,z1)\n")
        store = SqliteAtomStore()
        store.load_database(database)
        register_skolem_function(store)
        rule = CompiledRule(0, tuple(tgds)[0], "restricted", store)
        yield rule, store
        store.close()

    def test_staging_joins_search_indexes(self, bound_rule):
        rule, store = bound_rule
        parameters = {"delta_start": 0, "round_start": 10}
        for slot in range(2):
            details = _plan_details(store, rule.stage_sql(slot), parameters)
            _assert_no_relation_scan(details, f"stage(seed_slot={slot})")
            # At least one body alias must probe a real index (the seed
            # slot rides the seq watermark index; the other a column one).
            assert any(
                "USING INDEX" in detail or "USING COVERING INDEX" in detail
                for detail in details
            ), f"stage(seed_slot={slot}) plan has no index access: {details}"

    def test_fired_key_anti_join_uses_a_covering_index(self, bound_rule):
        rule, store = bound_rule
        details = _plan_details(
            store, rule.stage_sql(0), {"delta_start": 0, "round_start": 10}
        )
        # The pd_fired_* dedup table carries a UNIQUE over all key columns;
        # the anti-join must resolve inside that index alone.
        assert any("COVERING INDEX" in detail for detail in details), (
            f"fired-key anti-join is not covered by its unique index: {details}"
        )

    def test_restricted_not_exists_probe_searches_the_head_index(self, bound_rule):
        rule, store = bound_rule
        details = _plan_details(store, rule.firing_sql, {"round_start": 10})
        _assert_no_relation_scan(details, "restricted firing filter")
        # The correlated head probe (alias h0) must be an index search on
        # the frontier columns, not a scan of the head relation.
        head_rows = [detail for detail in details if "h0" in detail]
        assert head_rows, f"no head-probe row in plan: {details}"
        assert all("SEARCH" in detail for detail in head_rows), (
            f"restricted head probe scans the head relation: {details}"
        )

    def test_head_insert_guard_plans_clean(self, bound_rule):
        rule, store = bound_rule
        for head_sql, _predicate in rule.head_inserts:
            details = _plan_details(store, head_sql, {"round_seq": 11})
            _assert_no_relation_scan(details, "head insert")

    def test_parallel_plan_query_searches_indexes(self):
        database, tgds = _join_program()
        store = SqliteAtomStore()
        store.load_database(database)
        join_rule = tuple(tgds)[1]  # S(x,y), R(z,x) -> T(z,y)
        query = CompiledPlanQuery(join_rule, 0, (), store, partitioned=False)
        details = _plan_details(store, query._delta_sql, {"delta_start": 0})
        _assert_no_relation_scan(details, "CompiledPlanQuery delta join")
        assert any("USING INDEX" in d or "COVERING INDEX" in d for d in details)
        store.close()


class TestSkolemFunction:
    def test_udf_matches_null_factory_names(self):
        # The same (tgd_index, witness, variable) key must mint the same
        # null whether NullFactory hashes it in Python or the UDF does in
        # SQL over encoded column values.
        store = SqliteAtomStore()
        register_skolem_function(store)
        witness = ((Variable("x"), Constant("a")), (Variable("y"), Constant("b")))
        expected = NullFactory().for_key((3, witness, "z1"))
        (value,) = store.query(
            "SELECT repro_skolem(3, '[\"x\", \"y\"]', 'z1', ?, ?)",
            (encode_term(Constant("a")), encode_term(Constant("b"))),
        )[0:1][0]
        assert value == NULL_MARKER + expected.name
        store.close()

    def test_udf_distinguishes_rules_witnesses_and_variables(self):
        store = SqliteAtomStore()
        register_skolem_function(store)
        a = encode_term(Constant("a"))
        b = encode_term(Constant("b"))
        base = store.query("SELECT repro_skolem(0, '[\"x\"]', 'z', ?)", (a,))[0][0]
        variants = {
            store.query("SELECT repro_skolem(1, '[\"x\"]', 'z', ?)", (a,))[0][0],
            store.query("SELECT repro_skolem(0, '[\"x\"]', 'w', ?)", (a,))[0][0],
            store.query("SELECT repro_skolem(0, '[\"x\"]', 'z', ?)", (b,))[0][0],
            store.query("SELECT repro_skolem(0, '[\"y\"]', 'z', ?)", (a,))[0][0],
        }
        assert base not in variants
        assert len(variants) == 4
        # Deterministic: asking again returns the identical name.
        again = store.query("SELECT repro_skolem(0, '[\"x\"]', 'z', ?)", (a,))[0][0]
        assert again == base
        store.close()

    def test_null_witnesses_feed_back_into_the_hash(self):
        # Nulls invented in earlier rounds appear as encoded "_:name"
        # column values; the UDF must decode them back to Null terms so the
        # key repr matches what the interpreted engines hash.
        store = SqliteAtomStore()
        register_skolem_function(store)
        inner = NullFactory().for_key((0, ((Variable("x"), Constant("a")),), "z"))
        expected = NullFactory().for_key((1, ((Variable("y"), inner),), "w"))
        value = store.query(
            "SELECT repro_skolem(1, '[\"y\"]', 'w', ?)", (encode_term(inner),)
        )[0][0]
        assert value == NULL_MARKER + expected.name
        store.close()


class TestTierSelection:
    """Which tier ran is observable through the temp-table footprint."""

    def _temp_tables(self, store):
        return {
            name
            for (name,) in store.query(
                "SELECT name FROM sqlite_temp_master WHERE type = 'table'"
            )
        }

    def test_linear_rules_take_the_recursive_cte_tier(self):
        database, tgds = _linear_program()
        store = SqliteAtomStore()
        result = PushdownExecutor("semi-oblivious").run(database, tgds, store)
        assert result.terminated
        tables = self._temp_tables(store)
        assert "pd_cte_atoms" in tables
        store.close()

    def test_join_bodies_take_the_delta_round_tier(self):
        database, tgds = _join_program()
        store = SqliteAtomStore()
        result = PushdownExecutor("semi-oblivious").run(database, tgds, store)
        assert result.terminated
        tables = self._temp_tables(store)
        assert "pd_cte_atoms" not in tables
        assert "pd_stage_0" in tables and "pd_fired_0" in tables
        store.close()

    def test_restricted_never_takes_the_cte_tier(self):
        # The restricted check needs round-start snapshots, which a single
        # recursive statement cannot observe — even linear programs must
        # run the round loop.
        database, tgds = _linear_program()
        store = SqliteAtomStore()
        result = PushdownExecutor("restricted").run(database, tgds, store)
        assert result.terminated
        tables = self._temp_tables(store)
        assert "pd_cte_atoms" not in tables
        assert "pd_fire_0" in tables  # the restricted firing filter ran
        store.close()

    def test_cte_tier_grows_its_cap_past_the_initial_depth(self):
        # A chain needing more than _CTE_INITIAL_CAP (8) rounds: the first
        # capped recursion sees a truncated fixpoint, the replay reports it
        # inconclusive, and the tier reruns with a grown cap.
        facts = parse_database("P0(a).\n")
        rules = parse_rules(
            "".join(f"P{i}(x) -> P{i + 1}(x)\n" for i in range(12))
        )
        expected = fingerprint(chase(facts, rules))
        pushed = chase(facts, rules, backend="sqlite", strategy="sql-pushdown")
        assert pushed.rounds == 12
        assert fingerprint(pushed) == expected


class TestPragmaTuning:
    def test_memory_store_pragmas(self):
        with SqliteAtomStore() as store:
            assert store.query("PRAGMA journal_mode")[0][0] == "memory"
            assert store.query("PRAGMA synchronous")[0][0] == 2
            assert store.query("PRAGMA cache_size")[0][0] == -16384
            assert store.query("PRAGMA temp_store")[0][0] == 2

    def test_file_store_pragmas(self, tmp_path):
        # WAL + synchronous=NORMAL: one fsync per checkpoint instead of per
        # commit, while a crash still only loses un-checkpointed WAL frames
        # that the next open replays — resumability is pinned below.
        with SqliteAtomStore(path=str(tmp_path / "tuned.db")) as store:
            assert store.query("PRAGMA journal_mode")[0][0] == "wal"
            assert store.query("PRAGMA synchronous")[0][0] == 1
            assert store.query("PRAGMA cache_size")[0][0] == -16384
            assert store.query("PRAGMA temp_store")[0][0] == 2

    @pytest.mark.parametrize("program", ["join", "linear"])
    def test_pushdown_budget_raise_still_persists_the_prefix(self, tmp_path, program):
        # The WAL-tuned file store must keep the interrupted prefix on disk
        # even when the pushdown executor raises mid-chase — that prefix is
        # exactly what makes the file resumable after a crash.
        database, tgds = _join_program() if program == "join" else _linear_program()
        fresh = chase(database, tgds)
        path = str(tmp_path / f"{program}.db")
        store = make_backend_store(f"sqlite:{path}")
        with pytest.raises(ChaseLimitExceeded):
            chase(
                database,
                tgds,
                store=store,
                strategy="sql-pushdown",
                limits=ChaseLimits(max_rounds=1),
                on_limit="raise",
            )
        store.close()
        with SqliteAtomStore(path=path) as reopened:
            assert reopened.atom_count() > 0  # seed + round-1 atoms survived
        # Resume *through the pushdown strategy* over the reopened file:
        # the content-addressed nulls make the resumed fixpoint identical
        # to an uninterrupted in-memory run.
        resumed = chase(
            database, tgds, store=SqliteAtomStore(path=path), strategy="sql-pushdown"
        )
        assert resumed.terminated
        assert sorted(map(str, resumed.instance)) == sorted(map(str, fresh.instance))
        resumed.store.close()

    def test_interrupted_pushdown_resumes_across_strategies(self, tmp_path):
        # A prefix persisted by the interpreted engine must be resumable by
        # the compiled one (and the file then holds the shared fixpoint).
        database, tgds = _join_program()
        fresh = chase(database, tgds)
        path = str(tmp_path / "crossover.db")
        partial = chase(
            database,
            tgds,
            store=make_backend_store(f"sqlite:{path}"),
            limits=ChaseLimits(max_rounds=1),
        )
        assert not partial.terminated
        partial.store.close()
        resumed = chase(
            database, tgds, store=SqliteAtomStore(path=path), strategy="sql-pushdown"
        )
        assert resumed.terminated
        assert sorted(map(str, resumed.instance)) == sorted(map(str, fresh.instance))
        assert resumed.store.atom_count() == len(fresh.instance)
        resumed.store.close()


class TestPushdownWiring:
    def test_chase_requires_the_sqlite_backend(self):
        database, tgds = _join_program()
        with pytest.raises(ValueError, match="requires the sqlite backend"):
            chase(database, tgds, strategy="sql-pushdown")
        with pytest.raises(ValueError, match="requires the sqlite backend"):
            chase(database, tgds, strategy="sql-pushdown", backend="relational")

    def test_parallel_chase_requires_the_sqlite_backend(self):
        database, tgds = _join_program()
        with pytest.raises(ValueError, match="sqlite"):
            parallel_chase(database, tgds, workers=2, strategy="sql-pushdown")

    def test_parallel_chase_rejects_unknown_strategies(self):
        database, tgds = _join_program()
        with pytest.raises(ValueError, match="indexed"):
            parallel_chase(database, tgds, workers=2, strategy="sql")

    def test_trigger_source_routes_elsewhere(self):
        # sql-pushdown is not a per-trigger enumeration strategy; asking
        # the trigger-source factory for it must say where to go instead.
        _, tgds = _join_program()
        with pytest.raises(ValueError, match="does not enumerate triggers"):
            make_trigger_source(tuple(tgds), "sql-pushdown")

    def test_executor_validates_its_configuration(self):
        with pytest.raises(ValueError, match="unknown chase variant"):
            PushdownExecutor(variant="core")
        with pytest.raises(ValueError, match="on_limit"):
            PushdownExecutor(on_limit="ignore")
        database, tgds = _join_program()
        with pytest.raises(ValueError, match="requires a SqliteAtomStore"):
            PushdownExecutor().run(database, tgds, store=None)

    def test_executor_accepts_the_underscore_variant_alias(self):
        database, tgds = _join_program()
        expected = fingerprint(chase(database, tgds, variant="semi-oblivious"))
        store = SqliteAtomStore()
        result = PushdownExecutor("semi_oblivious").run(database, tgds, store)
        result.materialize()
        assert fingerprint(result) == expected
        store.close()

    def test_limit_stop_returns_and_raises_like_the_engines(self):
        database, tgds = _join_program()
        limits = ChaseLimits(max_rounds=1)
        reference = chase(database, tgds, limits=limits)
        pushed = chase(
            database,
            tgds,
            backend="sqlite",
            strategy="sql-pushdown",
            limits=limits,
        )
        assert not pushed.terminated
        assert pushed.stop_reason == reference.stop_reason == "max_rounds"
        assert pushed.rounds == reference.rounds
        assert pushed.atoms_created == reference.atoms_created
        with pytest.raises(ChaseLimitExceeded, match="max_rounds budget"):
            chase(
                database,
                tgds,
                backend="sqlite",
                strategy="sql-pushdown",
                limits=limits,
                on_limit="raise",
            )
