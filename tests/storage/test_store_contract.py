"""All three ``AtomStore`` backends certified against the shared contract.

One subclass per backend (plus the file-backed sqlite variant, whose rows
survive on disk) — adding a backend to the system means adding a subclass
here.  The harness itself lives in ``tests/storage/store_contract.py``.
"""

from repro.core.instances import Instance
from repro.storage.database import RelationalDatabase
from repro.storage.sqlbackend import SqliteAtomStore

from tests.storage.store_contract import AtomStoreContract


class TestInstanceContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return Instance()


class TestRelationalDatabaseContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return RelationalDatabase(name="contract")


class TestSqliteMemoryContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return SqliteAtomStore(name="contract")


class TestSqliteFileContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return SqliteAtomStore(path=str(tmp_path / "contract.db"), name="contract")
