"""Every ``AtomStore`` backend certified against the shared contract.

One subclass per backend (plus the file-backed sqlite variant, whose rows
survive on disk, and the read-only-attach overlay the parallel chase's
out-of-core process workers run on) — adding a backend to the system means
adding a subclass here.  The harness itself lives in
``tests/storage/store_contract.py``.
"""

from repro.core.instances import Instance
from repro.storage.database import RelationalDatabase
from repro.storage.sqlbackend import SqliteAtomStore, SqliteOverlayStore

from tests.storage.store_contract import AtomStoreContract


class TestInstanceContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return Instance()


class TestRelationalDatabaseContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return RelationalDatabase(name="contract")


class TestSqliteMemoryContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return SqliteAtomStore(name="contract")


class TestSqliteFileContract(AtomStoreContract):
    def make_store(self, tmp_path):
        return SqliteAtomStore(path=str(tmp_path / "contract.db"), name="contract")


class TestSqliteOverlayContract(AtomStoreContract):
    """The overlay store over an (empty) read-only base file.

    Exercises the overlay's write path end to end: every contract atom
    lands in the in-memory delta schema while the attached base stays
    untouched.  The base-union read path is pinned by
    ``tests/storage/test_sqlite_backend.py::TestSqliteOverlayStore``.
    """

    def make_store(self, tmp_path):
        base_path = str(tmp_path / "overlay-base.db")
        SqliteAtomStore(path=base_path, name="base").close()
        return SqliteOverlayStore(base_path, name="contract")
