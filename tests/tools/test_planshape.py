"""Plan-shape audit self-tests.

Pins three properties: the panel really covers every compiled statement
family (no silent vacuity), the current tree's plans are clean, and the
audit turns red under the canonical mutation — dropping the join indexes a
compiled statement depends on.
"""

from __future__ import annotations

from tools.reprolint.planshape import (
    REQUIRED_FAMILIES,
    collect_cases,
    run_plan_shape,
)


def test_panel_covers_every_statement_family():
    cases = collect_cases()
    families = {case.family for case in cases}
    assert REQUIRED_FAMILIES <= families
    # Multi-slot joins must contribute one stage statement per seed slot.
    stage_labels = [case.label for case in cases if case.family == "stage"]
    assert any("seed_slot=0" in label for label in stage_labels)
    assert any("seed_slot=1" in label for label in stage_labels)


def test_current_tree_plans_are_clean():
    findings = run_plan_shape()
    assert findings == [], [finding.message for finding in findings]


def test_dropping_join_indexes_turns_the_audit_red():
    # Mutation: strip the secondary (position/seq) indexes from a compiled
    # stage statement's store; the seed-slot scan must degrade and be
    # reported.  This is what protects against a future compiler change
    # silently losing its index discipline.
    case = next(
        case
        for case in collect_cases()
        if case.family == "stage" and "seed_slot=1" in case.label
    )
    assert case.audit() == []
    index_rows = case.store.query(
        "SELECT name FROM sqlite_master WHERE type='index' AND name LIKE 'idx_%'"
    )
    for (name,) in index_rows:
        case.store.bulk_apply(f'DROP INDEX "{name}"')
    problems = case.audit()
    assert problems, "dropping every join index left the plan audit green"
    assert any("degraded" in problem for problem in problems)


def test_full_enumeration_families_still_reject_rowid_scans():
    # The initial body join is allowed a covering-index scan (full
    # enumeration is its semantics) but never a bare rowid walk.
    case = next(case for case in collect_cases() if case.family == "body-initial")
    assert case.full_enumeration
    assert case.audit() == []
