"""The reprolint tests import the repo-root ``tools`` package directly."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
