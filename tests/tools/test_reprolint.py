"""Fixture-based self-tests for the reprolint framework and its checkers.

Every rule gets mutation-style coverage: a snippet re-introducing the class
of bug the rule exists for (the PR 5 unlocked connection access, an
unsorted set iteration on a result path, a lambda through a pool submit, an
unescaped identifier interpolation) must turn the lint red, and the
disciplined twin of each snippet must stay green.  The framework's waiver
contract — justification mandatory, stale waivers flagged — is pinned here
too, because the whole CI gate leans on it.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.reprolint import run_lint
from tools.reprolint.checkers import ALL_CHECKERS

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_snippet(tmp_path: Path, rel: str, source: str):
    """Write *source* at *rel* under a scratch tree and lint the tree.

    The relative path is what routes the module to checkers (each checker
    scopes itself by path fragments), so fixtures place snippets where the
    real code they imitate lives.
    """
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([tmp_path], ALL_CHECKERS)


def rules_of(report):
    return sorted({finding.rule for finding in report.findings})


# --------------------------------------------------------------------------- #
# Framework: waivers


class TestWaivers:
    SNIPPET = """
    import time

    def stamp():
        return time.time(){waiver}
    """

    def test_justified_waiver_suppresses_the_finding(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/clock.py",
            self.SNIPPET.format(
                waiver="  # reprolint: disable=determinism -- test fixture"
            ),
        )
        assert report.ok
        assert len(report.waived) == 1
        assert report.waived[0].justification == "test fixture"

    def test_waiver_without_justification_is_itself_a_finding(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/clock.py",
            self.SNIPPET.format(waiver="  # reprolint: disable=determinism"),
        )
        assert not report.ok
        assert "waiver" in rules_of(report)
        # The original finding stays active too: nothing is suppressed
        # until the author writes down why.
        assert "determinism" in rules_of(report)

    def test_unused_waiver_is_flagged_as_stale(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/clean.py",
            """
            def fine():  # reprolint: disable=determinism -- nothing here needs this
                return 1
            """,
        )
        assert rules_of(report) == ["waiver-unused"]

    def test_standalone_waiver_comment_covers_the_next_line(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/clock.py",
            """
            import time

            def stamp():
                # reprolint: disable=determinism -- fixture: next-line coverage
                return time.time()
            """,
        )
        assert report.ok
        assert len(report.waived) == 1


# --------------------------------------------------------------------------- #
# lock-discipline


class TestLockDiscipline:
    def test_unlocked_connection_read_turns_the_lint_red(self, tmp_path):
        # The PR 5 mutation: a public method touching the connection
        # without the lock.
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            class SqliteAtomStore:
                def __init__(self):
                    self._connection_lock = object()
                    self._connection = object()

                def atom_count(self):
                    return self._connection.execute("SELECT 1").fetchone()
            """,
        )
        assert rules_of(report) == ["lock-discipline"]

    def test_locked_access_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            class SqliteAtomStore:
                def __init__(self):
                    self._connection_lock = object()
                    self._connection = object()

                def atom_count(self):
                    with self._connection_lock:
                        return self._connection.execute("SELECT 1").fetchone()
            """,
        )
        assert report.ok

    def test_private_helper_reached_only_under_the_lock_passes(self, tmp_path):
        # The intra-class call-graph case: the helper itself is unlocked,
        # but its every call site holds the lock.
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            class SqliteAtomStore:
                def _run(self, sql):
                    return self._connection.execute(sql)

                def query(self, sql):
                    with self._connection_lock:
                        return self._run(sql)
            """,
        )
        assert report.ok

    def test_private_helper_reached_from_an_unlocked_caller_is_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            class SqliteAtomStore:
                def _run(self, sql):
                    return self._connection.execute(sql)

                def query(self, sql):
                    with self._connection_lock:
                        return self._run(sql)

                def sneaky(self, sql):
                    return self._run(sql)
            """,
        )
        assert rules_of(report) == ["lock-discipline"]

    def test_nested_function_called_inside_the_lock_passes(self, tmp_path):
        # The real add_atoms shape: a nested flush helper touching the
        # connection, invoked only within the locked region.
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            class SqliteAtomStore:
                def add_atoms(self, rows):
                    def flush_batch(batch):
                        self._connection.executemany("INSERT", batch)

                    with self._connection_lock:
                        flush_batch(rows)
            """,
        )
        assert report.ok

    def test_init_is_allowlisted(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            class SqliteAtomStore:
                def __init__(self):
                    self._connection_lock = object()
                    self._connection = connect()
                    self._connection.execute("PRAGMA journal_mode=WAL")
            """,
        )
        assert report.ok


# --------------------------------------------------------------------------- #
# determinism


class TestDeterminism:
    def test_unsorted_set_iteration_on_a_result_path_is_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/engine.py",
            """
            def insert_round(store, new_atoms):
                new_atoms = set(new_atoms)
                for atom in new_atoms:
                    store.add_atom(atom)
            """,
        )
        assert rules_of(report) == ["determinism"]

    def test_sorted_insertion_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/engine.py",
            """
            def insert_round(store, new_atoms):
                new_atoms = set(new_atoms)
                for atom in sorted(new_atoms):
                    store.add_atom(atom)
            """,
        )
        assert report.ok

    def test_annotated_set_parameter_is_tracked(self, tmp_path):
        from typing import Set  # noqa: F401  (mirrors the annotated source)

        report = lint_snippet(
            tmp_path,
            "chase/engine.py",
            """
            from typing import Set

            def emit(atoms: Set[int]):
                return list(atoms)
            """,
        )
        assert rules_of(report) == ["determinism"]

    def test_order_insensitive_consumers_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/engine.py",
            """
            def stats(atoms):
                atoms = set(atoms)
                count = len(atoms)
                present = "x" in atoms
                biggest = max(atoms)
                names = {a.name for a in atoms}
                return count, present, biggest, names
            """,
        )
        assert report.ok

    def test_set_join_serialisation_is_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/serialize.py",
            """
            def render(names):
                names = {n.lower() for n in names}
                return ", ".join(names)
            """,
        )
        assert rules_of(report) == ["determinism"]

    def test_clock_randomness_and_addresses_are_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/ids.py",
            """
            import random
            import time

            def fresh(obj):
                return (time.time(), random.random(), id(obj))
            """,
        )
        assert rules_of(report) == ["determinism"]
        assert len(report.findings) == 3

    def test_non_result_modules_get_the_clock_only_tier(self, tmp_path):
        # Outside core/chase/storage/fuzz/obs, seeded randomness, id(),
        # environment reads, and set iteration are the harness's own
        # business — only the wall clock is banned there.
        report = lint_snippet(
            tmp_path,
            "experiments/bench.py",
            """
            import os
            import random

            def shuffle(rows, seed):
                rng = random.Random(seed)
                rng.shuffle(rows)
                tags = set(os.environ["REPRO_BENCH_PRESET"].split(","))
                return [(id(row), row) for row in rows], list(tags)
            """,
        )
        assert report.ok

    def test_clock_reads_outside_result_modules_are_flagged(self, tmp_path):
        # The wall clock is banned tree-wide: every duration must flow
        # through the one injectable seam in repro.obs.clock.
        report = lint_snippet(
            tmp_path,
            "experiments/bench.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rules_of(report) == ["determinism"]
        assert "repro.obs.clock" in report.findings[0].message

    def test_obs_modules_are_in_full_scope(self, tmp_path):
        # The observability layer feeds ordered trace events, so it gets
        # every determinism check, not just the clock tier.
        report = lint_snippet(
            tmp_path,
            "obs/report.py",
            """
            def hot_rules(events):
                rules = {event["rule"] for event in events}
                return list(rules)
            """,
        )
        assert rules_of(report) == ["determinism"]


# --------------------------------------------------------------------------- #
# process-boundary


class TestProcessBoundary:
    def test_lambda_through_pool_submit_turns_the_lint_red(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/parallel.py",
            """
            def dispatch(pool, store):
                return pool.submit(lambda: store.atom_count())
            """,
        )
        assert rules_of(report) == ["process-boundary"]

    def test_live_store_in_a_pipe_send_is_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/parallel.py",
            """
            def seed(conn, store):
                conn.send(("seed", store))
            """,
        )
        assert rules_of(report) == ["process-boundary"]

    def test_generator_payload_is_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/parallel.py",
            """
            def seed(conn, atoms):
                conn.send((a for a in atoms))
            """,
        )
        assert rules_of(report) == ["process-boundary"]

    def test_spec_tuples_and_plain_messages_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/parallel.py",
            """
            def seed(conn, store_spec, atoms, items):
                conn.send(("seed", store_spec))
                conn.send(("delta", atoms, items))
                conn.send(("stop",))
            """,
        )
        assert report.ok

    def test_pipe_end_may_cross_via_process_args_but_not_send(self, tmp_path):
        clean = lint_snippet(
            tmp_path,
            "chase/parallel.py",
            """
            def spawn(worker_main, child_conn, store_spec):
                return Process(target=worker_main, args=(child_conn, store_spec))
            """,
        )
        assert clean.ok
        dirty = lint_snippet(
            tmp_path,
            "chase/parallel2/parallel.py",
            """
            def leak(conn, child_conn):
                conn.send(("handle", child_conn))
            """,
        )
        assert rules_of(dirty) == ["process-boundary"]

    def test_exchange_module_is_in_scope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/exchange.py",
            """
            def ship(conn, store):
                conn.send(("frame", store))
            """,
        )
        assert rules_of(report) == ["process-boundary"]

    def test_routing_table_in_an_exchange_payload_is_flagged(self, tmp_path):
        for payload in ("routing_table", "self.routing", "router"):
            report = lint_snippet(
                tmp_path,
                "chase/exchange.py",
                f"""
                class Sender:
                    def ship(self, conn, routing_table, router):
                        conn.send(("round", 1, {payload}))
                """,
            )
            assert rules_of(report) == ["process-boundary"], payload

    def test_heavy_routes_tuples_pass_the_routing_rule(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "chase/exchange.py",
            """
            def barrier(conn, heavy_routes, frame):
                conn.send(("round", 3, heavy_routes))
                conn.send(frame)
            """,
        )
        assert report.ok


# --------------------------------------------------------------------------- #
# sql-identifier


class TestSqlIdentifier:
    def test_raw_identifier_interpolation_turns_the_lint_red(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            def drop(predicate):
                return f"DROP TABLE {predicate.name}"
            """,
        )
        assert rules_of(report) == ["sql-identifier"]

    def test_percent_and_format_building_are_caught_too(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            def build(predicate):
                a = "SELECT * FROM %s" % predicate.name
                b = "DELETE FROM {}".format(predicate.name)
                return a, b
            """,
        )
        assert rules_of(report) == ["sql-identifier"]
        assert len(report.findings) == 2

    def test_taint_flows_through_local_assignment(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            def drop(predicate):
                table = table_name(predicate.name)
                return f"DROP TABLE {table}"
            """,
        )
        assert rules_of(report) == ["sql-identifier"]

    def test_escaped_identifiers_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            def select(predicate):
                table = _quote(table_name(predicate.name))
                return f"SELECT * FROM {table} WHERE c0 = :v"
            """,
        )
        assert report.ok

    def test_non_sql_messages_with_raw_names_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/store.py",
            """
            def complain(predicate, existing):
                raise ValueError(
                    f"relation {predicate.name!r} already exists with arity "
                    f"{existing.arity}"
                )
            """,
        )
        assert report.ok

    def test_precomputed_lookup_by_raw_name_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "storage/sqlbackend/pushdown.py",
            """
            def branch(self, predicate):
                return f"SELECT {self._tag[predicate.name]} FROM w"
            """,
        )
        assert report.ok


# --------------------------------------------------------------------------- #
# The real tree and the CLI surface


class TestRealTree:
    def test_src_repro_lints_clean(self):
        report = run_lint([REPO_ROOT / "src" / "repro"], ALL_CHECKERS)
        assert report.ok, [
            f"{finding.location()} [{finding.rule}] {finding.message}"
            for finding in report.findings
        ]

    def test_every_waiver_in_the_tree_is_justified_and_used(self):
        report = run_lint([REPO_ROOT / "src" / "repro"], ALL_CHECKERS)
        for waiver in report.waivers:
            assert waiver.justification, f"unjustified waiver at {waiver.path}:{waiver.line}"
            assert waiver.used, f"stale waiver at {waiver.path}:{waiver.line}"


class TestCli:
    def run_cli(self, *argv, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *argv],
            cwd=cwd,
            capture_output=True,
            text=True,
        )

    def test_clean_tree_exits_zero(self):
        result = self.run_cli("src/repro")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_findings_exit_one_and_json_is_machine_readable(self, tmp_path):
        bad = tmp_path / "chase" / "engine.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef t():\n    return time.time()\n")
        result = self.run_cli(str(tmp_path), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "determinism"

    def test_unknown_rule_is_a_usage_error(self):
        result = self.run_cli("src/repro", "--rules", "no-such-rule")
        assert result.returncode == 2

    def test_syntax_error_is_a_usage_error(self, tmp_path):
        broken = tmp_path / "chase" / "broken.py"
        broken.parent.mkdir(parents=True)
        broken.write_text("def (:\n")
        result = self.run_cli(str(tmp_path))
        assert result.returncode == 2
        assert "cannot parse" in result.stderr

    def test_list_waivers_reports_the_tree_inventory(self):
        result = self.run_cli("src/repro", "--list-waivers")
        assert result.returncode == 0
        assert "waiver(s)" in result.stdout
        # The three designed waivers of this tree: the connection property
        # escape hatch and the two order-insensitive trigger enumerations.
        assert "storage/sqlbackend/store.py" in result.stdout
        assert "chase/matching.py" in result.stdout
        assert "chase/triggers.py" in result.stdout
