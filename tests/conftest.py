"""Pytest configuration and shared fixtures."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.parser import parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet

# Keep hypothesis fast and deterministic in CI-like environments.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
# The pinned CI sweep for the property-based conformance suite: more
# examples, derandomized so every run explores the same 200 programs.
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def simple_rules() -> TGDSet:
    """A tiny weakly-acyclic simple-linear rule set."""
    return parse_rules(
        """
        R(x,y) -> S(y,z)
        S(x,y) -> T(x)
        """
    )


@pytest.fixture
def cyclic_rules() -> TGDSet:
    """The canonical non-terminating simple-linear rule: R(x,y) -> ∃z R(y,z)."""
    return parse_rules("R(x,y) -> R(y,z)")


@pytest.fixture
def example_1_1():
    """Example 1.1 of the paper: D = {R(a,a)}, R(x,y) -> ∃z R(z,x)."""
    return parse_database("R(a,a)."), parse_rules("R(x,y) -> R(z,x)")


@pytest.fixture
def example_3_4():
    """Example 3.4 of the paper: D = {R(a,b)}, R(x,x) -> ∃z R(z,x)."""
    return parse_database("R(a,b)."), parse_rules("R(x,x) -> R(z,x)")


@pytest.fixture
def small_database() -> Database:
    """A handful of facts over the R/S/T vocabulary."""
    return parse_database(
        """
        R(a,b).
        R(b,b).
        S(a,c).
        T(c).
        """
    )
