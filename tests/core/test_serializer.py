"""Serializer unit tests and parse/serialize round-trip properties."""

import pytest
from hypothesis import given

from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.parser import parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.serializer import (
    dump_database,
    dump_rules,
    serialize_atom,
    serialize_database,
    serialize_fact,
    serialize_rules,
    serialize_tgd,
)
from repro.core.terms import Constant, Variable
from tests.helpers import databases, linear_tgd_sets

R = Predicate("R", 2)


class TestSerializeBasics:
    def test_atom_in_rule(self):
        atom = Atom(R, (Variable("x"), Variable("y")))
        assert serialize_atom(atom, in_rule=True) == "R(x,y)"

    def test_fact(self):
        atom = Atom(R, (Constant("a"), Constant("b")))
        assert serialize_fact(atom) == "R(a,b)."

    def test_constant_needing_quotes(self):
        atom = Atom(R, (Constant("a b"), Constant("c,d")))
        text = serialize_fact(atom)
        assert '"a b"' in text and '"c,d"' in text
        assert parse_database(text).atoms() == {atom}

    def test_tgd(self):
        rules = parse_rules("R(x,y) -> S(y,z)")
        assert serialize_tgd(tuple(rules)[0]) == "R(x,y) -> S(y,z)"

    def test_dump_and_load(self, tmp_path):
        rules = parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(x)")
        database = parse_database("R(a,b).")
        rule_path = tmp_path / "rules.txt"
        fact_path = tmp_path / "facts.txt"
        dump_rules(rules, rule_path)
        dump_database(database, fact_path)
        assert parse_rules(rule_path.read_text()) == rules
        assert parse_database(fact_path.read_text()) == database


class TestRoundTripProperties:
    @given(linear_tgd_sets(simple=False, min_size=1, max_size=5))
    def test_rules_round_trip(self, tgds):
        text = serialize_rules(tgds)
        assert parse_rules(text) == tgds

    @given(linear_tgd_sets(simple=True, min_size=1, max_size=5))
    def test_simple_rules_round_trip_preserves_class(self, tgds):
        parsed = parse_rules(serialize_rules(tgds))
        assert parsed.is_simple_linear()
        assert parsed == tgds

    @given(databases(min_size=1, max_size=6))
    def test_databases_round_trip(self, database):
        text = serialize_database(database)
        assert parse_database(text) == database
