"""Unit tests for repro.core.atoms."""

import pytest

from repro.core.atoms import Atom, positions_of, schema_of, variables_of
from repro.core.predicates import Position, Predicate
from repro.core.terms import Constant, Null, Variable
from repro.exceptions import ValidationError

R = Predicate("R", 2)
S = Predicate("S", 3)
a, b = Constant("a"), Constant("b")
x, y, z = Variable("x"), Variable("y"), Variable("z")
n1 = Null("n1")


class TestAtomConstruction:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Atom(R, (a,))

    def test_non_term_argument_rejected(self):
        with pytest.raises(ValidationError):
            Atom(R, (a, "b"))

    def test_of_constructor(self):
        atom = Atom.of("R", a, b)
        assert atom.predicate == R
        assert atom.terms == (a, b)

    def test_immutability(self):
        atom = Atom(R, (a, b))
        with pytest.raises(AttributeError):
            atom.terms = (b, a)

    def test_equality_and_hash(self):
        assert Atom(R, (a, b)) == Atom(R, (a, b))
        assert Atom(R, (a, b)) != Atom(R, (b, a))
        assert len({Atom(R, (a, b)), Atom(R, (a, b))}) == 1

    def test_repr(self):
        assert repr(Atom(R, (a, x))) == "R(a, ?x)"


class TestAtomQueries:
    def test_variables_constants_nulls(self):
        atom = Atom(S, (a, x, n1))
        assert atom.variables() == {x}
        assert atom.constants() == {a}
        assert atom.nulls() == {n1}
        assert atom.domain() == {a, n1}

    def test_is_fact(self):
        assert Atom(R, (a, b)).is_fact()
        assert not Atom(R, (a, n1)).is_fact()
        assert not Atom(R, (a, x)).is_fact()

    def test_is_ground(self):
        assert Atom(R, (a, n1)).is_ground()
        assert not Atom(R, (a, x)).is_ground()

    def test_positions_of(self):
        atom = Atom(S, (x, y, x))
        assert atom.positions_of(x) == (Position(S, 1), Position(S, 3))
        assert atom.positions_of(z) == ()

    def test_substitute(self):
        atom = Atom(R, (x, y))
        assert atom.substitute({x: a}) == Atom(R, (a, y))

    def test_has_repeated_terms(self):
        assert Atom(R, (x, x)).has_repeated_terms()
        assert not Atom(R, (x, y)).has_repeated_terms()

    def test_arity_property(self):
        assert Atom(S, (x, y, z)).arity == 3


class TestAtomSetHelpers:
    def test_variables_of(self):
        atoms = [Atom(R, (x, y)), Atom(R, (y, z))]
        assert variables_of(atoms) == {x, y, z}

    def test_positions_of_set(self):
        atoms = [Atom(R, (x, y)), Atom(S, (x, x, z))]
        assert positions_of(atoms, x) == {Position(R, 1), Position(S, 1), Position(S, 2)}

    def test_schema_of(self):
        atoms = [Atom(R, (a, b)), Atom(S, (a, a, b))]
        assert schema_of(atoms) == {R, S}
