"""Unit tests for repro.core.tgds."""

import pytest

from repro.core.atoms import Atom
from repro.core.parser import parse_rules, parse_tgd
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet
from repro.exceptions import NotLinearError, NotSimpleLinearError, ValidationError

R = Predicate("R", 2)
S = Predicate("S", 2)
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestTGDConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(ValidationError):
            TGD((), (Atom(R, (x, y)),))

    def test_empty_head_rejected(self):
        with pytest.raises(ValidationError):
            TGD((Atom(R, (x, y)),), ())

    def test_constants_rejected(self):
        with pytest.raises(ValidationError):
            TGD((Atom(R, (x, Constant("a"))),), (Atom(S, (x, x)),))

    def test_equality_ignores_label(self):
        first = TGD((Atom(R, (x, y)),), (Atom(S, (y, z)),), label="a")
        second = TGD((Atom(R, (x, y)),), (Atom(S, (y, z)),), label="b")
        assert first == second
        assert hash(first) == hash(second)

    def test_immutability(self):
        tgd = parse_tgd("R(x,y) -> S(y,z)")
        with pytest.raises(AttributeError):
            tgd.body = ()


class TestTGDVariableSets:
    def test_frontier(self):
        tgd = parse_tgd("R(x,y) -> S(y,z)")
        assert tgd.frontier() == {Variable("y")}

    def test_existential_variables(self):
        tgd = parse_tgd("R(x,y) -> S(y,z)")
        assert tgd.existential_variables() == {Variable("z")}

    def test_empty_frontier_detection(self):
        tgd = parse_tgd("R(x,y) -> S(z,w)")
        assert tgd.has_empty_frontier()
        assert not parse_tgd("R(x,y) -> S(x,w)").has_empty_frontier()

    def test_body_and_head_variables(self):
        tgd = parse_tgd("R(x,y), S(y,w) -> T(x,z)")
        assert tgd.body_variables() == {Variable("x"), Variable("y"), Variable("w")}
        assert tgd.head_variables() == {Variable("x"), Variable("z")}


class TestTGDClassification:
    def test_linear(self):
        assert parse_tgd("R(x,y) -> S(y,z)").is_linear()
        assert not parse_tgd("R(x,y), S(y,w) -> T(x,z)").is_linear()

    def test_simple_linear(self):
        assert parse_tgd("R(x,y) -> S(y,y)").is_simple_linear()
        assert not parse_tgd("R(x,x) -> S(x,z)").is_simple_linear()
        assert not parse_tgd("R(x,y), S(y,z) -> T(x,z)").is_simple_linear()

    def test_single_head(self):
        assert parse_tgd("R(x,y) -> S(y,z)").is_single_head()
        assert not parse_tgd("R(x,y) -> S(y,z), T(x,z)").is_single_head()

    def test_body_atom_requires_linearity(self):
        with pytest.raises(NotLinearError):
            parse_tgd("R(x,y), S(y,z) -> T(x,z)").body_atom()

    def test_predicates(self):
        tgd = parse_tgd("R(x,y) -> S(y,z), T(x,z)")
        assert {p.name for p in tgd.predicates()} == {"R", "S", "T"}


class TestTGDSet:
    def test_deduplication(self):
        tgds = TGDSet([parse_tgd("R(x,y) -> S(y,z)"), parse_tgd("R(x,y) -> S(y,z)")])
        assert len(tgds) == 1

    def test_insertion_order_preserved(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(x,y)\nT(x,y) -> R(x,y)")
        names = [tgd.body[0].predicate.name for tgd in rules]
        assert names == ["R", "S", "T"]

    def test_schema(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(x,y)")
        assert {p.name for p in rules.schema()} == {"R", "S", "T"}

    def test_class_checks(self):
        sl = parse_rules("R(x,y) -> S(y,z)")
        lin = parse_rules("R(x,x) -> S(x,z)")
        assert sl.is_simple_linear() and sl.is_linear()
        assert lin.is_linear() and not lin.is_simple_linear()
        with pytest.raises(NotSimpleLinearError):
            lin.require_simple_linear()

    def test_require_linear_rejects_multi_body(self):
        rules = parse_rules("R(x,y), S(y,z) -> T(x,z)")
        with pytest.raises(NotLinearError):
            rules.require_linear()

    def test_split_empty_frontier(self):
        rules = parse_rules("R(x,y) -> S(z,w)\nR(x,y) -> S(x,w)")
        non_empty, empty = rules.split_empty_frontier()
        assert len(non_empty) == 1
        assert len(empty) == 1

    def test_by_body_predicate_index(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nR(x,y) -> T(x,y)\nS(x,y) -> T(x,y)")
        index = rules.by_body_predicate()
        assert len(index[Predicate("R", 2)]) == 2
        assert len(index[Predicate("S", 2)]) == 1

    def test_counts(self):
        rules = parse_rules("R(x,y) -> S(y,z), T(x,z)\nS(x,y) -> T(x,y)")
        assert rules.head_atom_count() == 3
        assert rules.max_arity() == 2

    def test_membership_and_equality(self):
        first = parse_rules("R(x,y) -> S(y,z)")
        second = parse_rules("R(x,y) -> S(y,z)")
        assert first == second
        assert tuple(first)[0] in second
