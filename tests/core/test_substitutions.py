"""Unit tests for repro.core.substitutions."""

import pytest

from repro.core.atoms import Atom
from repro.core.instances import Instance
from repro.core.predicates import Predicate
from repro.core.substitutions import (
    Substitution,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
    match_atom,
)
from repro.core.terms import Constant, Variable

R = Predicate("R", 2)
S = Predicate("S", 2)
a, b, c = Constant("a"), Constant("b"), Constant("c")
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestSubstitution:
    def test_constants_map_to_themselves(self):
        substitution = Substitution({x: a})
        assert substitution[b] == b
        assert substitution.get(b) == b

    def test_non_identity_on_constants_rejected(self):
        with pytest.raises(ValueError):
            Substitution({a: b})

    def test_restrict(self):
        substitution = Substitution({x: a, y: b})
        restricted = substitution.restrict([x])
        assert x in restricted
        assert restricted.get(y) is None

    def test_extend_conflict_rejected(self):
        substitution = Substitution({x: a})
        with pytest.raises(ValueError):
            substitution.extend({x: b})

    def test_extend_merges(self):
        substitution = Substitution({x: a}).extend({y: b})
        assert substitution[y] == b

    def test_apply(self):
        substitution = Substitution({x: a, y: b})
        assert substitution.apply(Atom(R, (x, y))) == Atom(R, (a, b))

    def test_apply_keeps_unmapped_variables(self):
        substitution = Substitution({x: a})
        assert substitution.apply(Atom(R, (x, z))) == Atom(R, (a, z))

    def test_equality_and_hash(self):
        assert Substitution({x: a}) == Substitution({x: a})
        assert len({Substitution({x: a}), Substitution({x: a})}) == 1


class TestMatchAtom:
    def test_basic_match(self):
        assert match_atom(Atom(R, (x, y)), Atom(R, (a, b))) == {x: a, y: b}

    def test_predicate_mismatch(self):
        assert match_atom(Atom(R, (x, y)), Atom(S, (a, b))) is None

    def test_repeated_variable_requires_equal_values(self):
        assert match_atom(Atom(R, (x, x)), Atom(R, (a, a))) == {x: a}
        assert match_atom(Atom(R, (x, x)), Atom(R, (a, b))) is None

    def test_base_is_respected(self):
        assert match_atom(Atom(R, (x, y)), Atom(R, (a, b)), {x: b}) is None
        assert match_atom(Atom(R, (x, y)), Atom(R, (a, b)), {x: a}) == {x: a, y: b}


class TestHomomorphisms:
    def setup_method(self):
        self.instance = Instance(
            [Atom(R, (a, b)), Atom(R, (b, c)), Atom(S, (b, b))]
        )

    def test_single_atom(self):
        results = list(homomorphisms([Atom(R, (x, y))], self.instance))
        assert len(results) == 2

    def test_join_across_atoms(self):
        results = list(homomorphisms([Atom(R, (x, y)), Atom(R, (y, z))], self.instance))
        assert len(results) == 1
        assert results[0][x] == a and results[0][z] == c

    def test_no_match(self):
        assert not has_homomorphism([Atom(S, (x, y)), Atom(R, (y, x))], self.instance)

    def test_has_homomorphism_with_base(self):
        assert has_homomorphism([Atom(R, (x, y))], self.instance, base={x: b})
        assert not has_homomorphism([Atom(R, (x, y))], self.instance, base={x: c})

    def test_repeated_variables_in_pattern(self):
        results = list(homomorphisms([Atom(S, (x, x))], self.instance))
        assert len(results) == 1

    def test_is_homomorphism(self):
        substitution = Substitution({x: a, y: b})
        assert is_homomorphism(substitution, [Atom(R, (x, y))], self.instance)
        assert not is_homomorphism(Substitution({x: b, y: a}), [Atom(R, (x, y))], self.instance)
