"""Unit tests for repro.core.parser."""

import pytest

from repro.core.parser import (
    parse_atom,
    parse_database,
    parse_fact,
    parse_rules,
    parse_tgd,
)
from repro.core.predicates import Schema
from repro.core.terms import Constant, Variable
from repro.exceptions import ParseError


class TestParseAtom:
    def test_rule_context_identifiers_are_variables(self):
        atom = parse_atom("R(x, y)", as_variable=True)
        assert atom.variables() == {Variable("x"), Variable("y")}

    def test_fact_context_identifiers_are_constants(self):
        atom = parse_atom("R(a, b)", as_variable=False)
        assert atom.constants() == {Constant("a"), Constant("b")}

    def test_quoted_constants(self):
        atom = parse_atom('R("hello world", b)', as_variable=False)
        assert Constant("hello world") in atom.constants()

    def test_question_mark_forces_variable(self):
        atom = parse_atom("R(?x, a)", as_variable=False)
        assert Variable("x") in atom.variables()

    def test_nullary_atom(self):
        atom = parse_atom("R()")
        assert atom.predicate.arity == 0
        assert atom.terms == ()
        with pytest.raises(ParseError):
            parse_atom("R(,)")

    def test_malformed(self):
        with pytest.raises(ParseError):
            parse_atom("R(x, y")
        with pytest.raises(ParseError):
            parse_atom("(x, y)")
        with pytest.raises(ParseError):
            parse_atom("Rxy")


class TestParseTGD:
    def test_basic(self):
        tgd = parse_tgd("R(x,y) -> S(y,z)")
        assert tgd.is_simple_linear()
        assert tgd.frontier() == {Variable("y")}

    def test_multi_atom_body_and_head(self):
        tgd = parse_tgd("R(x,y), S(y,w) -> T(x,z), U(z,w)")
        assert len(tgd.body) == 2
        assert len(tgd.head) == 2

    def test_datalog_arrow_swaps_sides(self):
        tgd = parse_tgd("S(y,z) :- R(x,y)")
        assert tgd.body[0].predicate.name == "R"
        assert tgd.head[0].predicate.name == "S"

    def test_double_arrow(self):
        tgd = parse_tgd("R(x,y) => S(y,z)")
        assert tgd.head[0].predicate.name == "S"

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x,y), S(y,z)")

    def test_comment_stripped(self):
        tgd = parse_tgd("R(x,y) -> S(y,z)  % a comment")
        assert tgd.head[0].predicate.name == "S"


class TestParseFact:
    def test_trailing_dot_optional(self):
        assert parse_fact("R(a,b).") == parse_fact("R(a,b)")

    def test_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("R(?x, a).")


class TestParsePrograms:
    def test_parse_rules_skips_comments_and_blank_lines(self):
        rules = parse_rules(
            """
            % header comment
            R(x,y) -> S(y,z)

            # another comment
            S(x,y) -> T(x)
            """
        )
        assert len(rules) == 2

    def test_parse_rules_reports_line_numbers(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rules("R(x,y) -> S(y,z)\nbroken line\n")
        assert excinfo.value.line_number == 2

    def test_parse_database(self):
        database = parse_database("R(a,b).\nS(c).\n")
        assert len(database) == 2

    def test_parse_database_arity_conflict_detected(self):
        with pytest.raises(Exception):
            parse_database("R(a,b).\nR(a).\n")

    def test_shared_schema_canonicalizes_predicates(self):
        schema = Schema()
        rules = parse_rules("R(x,y) -> S(y,z)", schema=schema)
        database = parse_database("R(a,b).", schema=schema)
        assert next(iter(database)).predicate in rules.schema()

    def test_load_from_files(self, tmp_path):
        from repro.core.parser import load_database, load_rules

        rule_path = tmp_path / "rules.txt"
        rule_path.write_text("R(x,y) -> S(y,z)\n")
        fact_path = tmp_path / "facts.txt"
        fact_path.write_text("R(a,b).\n")
        assert len(load_rules(rule_path)) == 1
        assert len(load_database(fact_path)) == 1

    def test_duplicate_rules_are_collapsed(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nR(x,y) -> S(y,z)")
        assert len(rules) == 1
