"""Unit tests for repro.core.instances."""

import pytest

from repro.core.atoms import Atom
from repro.core.instances import Database, Instance, induced_database
from repro.core.parser import parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Null, Variable
from repro.exceptions import ValidationError

R = Predicate("R", 2)
S = Predicate("S", 1)
a, b = Constant("a"), Constant("b")
n = Null("n")


class TestInstance:
    def test_add_and_contains(self):
        instance = Instance()
        assert instance.add(Atom(R, (a, b)))
        assert not instance.add(Atom(R, (a, b)))
        assert Atom(R, (a, b)) in instance
        assert len(instance) == 1

    def test_nulls_allowed(self):
        instance = Instance()
        instance.add(Atom(R, (a, n)))
        assert instance.nulls() == {n}

    def test_variables_rejected(self):
        with pytest.raises(ValidationError):
            Instance().add(Atom(R, (a, Variable("x"))))

    def test_atoms_with_predicate(self):
        instance = Instance([Atom(R, (a, b)), Atom(S, (a,))])
        assert instance.atoms_with_predicate(R) == {Atom(R, (a, b))}
        assert instance.atoms_with_predicate(Predicate("T", 1)) == frozenset()

    def test_predicates_and_schema(self):
        instance = Instance([Atom(R, (a, b)), Atom(S, (a,))])
        assert instance.predicates() == {R, S}
        assert len(instance.schema()) == 2

    def test_domain(self):
        instance = Instance([Atom(R, (a, n))])
        assert instance.domain() == {a, n}
        assert instance.constants() == {a}

    def test_copy_is_independent(self):
        instance = Instance([Atom(R, (a, b))])
        clone = instance.copy()
        clone.add(Atom(S, (a,)))
        assert len(instance) == 1
        assert len(clone) == 2

    def test_iteration_is_deterministic(self):
        instance = Instance([Atom(S, (b,)), Atom(S, (a,)), Atom(R, (a, b))])
        assert list(instance) == list(instance)

    def test_equality(self):
        assert Instance([Atom(R, (a, b))]) == Instance([Atom(R, (a, b))])
        assert Instance([Atom(R, (a, b))]) != Instance([Atom(R, (b, a))])


class TestDatabase:
    def test_rejects_nulls(self):
        with pytest.raises(ValidationError):
            Database().add(Atom(R, (a, n)))

    def test_to_instance(self):
        database = parse_database("R(a,b).")
        instance = database.to_instance()
        assert isinstance(instance, Instance)
        instance.add(Atom(R, (a, n)))  # the copy accepts nulls
        assert len(database) == 1


class TestInducedDatabase:
    def test_one_atom_per_predicate(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(x)")
        database = induced_database(rules)
        assert len(database) == 3
        assert set(database.predicates()) == set(rules.schema().predicates)

    def test_constants_are_distinct_within_an_atom(self):
        rules = parse_rules("R(x,y) -> S(y,z)")
        database = induced_database(rules)
        for atom in database:
            assert len(set(atom.terms)) == atom.arity

    def test_accepts_schema_and_predicate_iterables(self):
        from repro.core.predicates import Schema

        database = induced_database(Schema([R, S]))
        assert len(database) == 2
        database2 = induced_database([R])
        assert len(database2) == 1
