"""Unit tests for repro.core.predicates."""

import pytest

from repro.core.predicates import Position, Predicate, Schema
from repro.exceptions import ValidationError


class TestPredicate:
    def test_negative_arity_rejected(self):
        with pytest.raises(ValidationError):
            Predicate("R", -1)

    def test_nullary_predicate_allowed(self):
        predicate = Predicate("Flag", 0)
        assert predicate.positions() == ()

    def test_name_required(self):
        with pytest.raises(ValidationError):
            Predicate("", 2)

    def test_positions_enumeration(self):
        predicate = Predicate("R", 3)
        positions = predicate.positions()
        assert len(positions) == 3
        assert positions[0] == Position(predicate, 1)
        assert positions[-1].index == 3

    def test_str(self):
        assert str(Predicate("R", 2)) == "R/2"

    def test_equality_and_hash(self):
        assert Predicate("R", 2) == Predicate("R", 2)
        assert Predicate("R", 2) != Predicate("R", 3)
        assert len({Predicate("R", 2), Predicate("R", 2)}) == 1


class TestPosition:
    def test_index_bounds_checked(self):
        predicate = Predicate("R", 2)
        with pytest.raises(ValidationError):
            Position(predicate, 0)
        with pytest.raises(ValidationError):
            Position(predicate, 3)

    def test_str(self):
        assert str(Position(Predicate("R", 2), 1)) == "(R,1)"

    def test_ordering(self):
        predicate = Predicate("R", 3)
        assert Position(predicate, 1) < Position(predicate, 2)


class TestSchema:
    def test_add_and_get(self):
        schema = Schema()
        predicate = schema.add(Predicate("R", 2))
        assert schema.get("R") == predicate
        assert "R" in schema
        assert predicate in schema

    def test_arity_conflict_rejected(self):
        schema = Schema([Predicate("R", 2)])
        with pytest.raises(ValidationError):
            schema.add(Predicate("R", 3))

    def test_add_is_idempotent(self):
        schema = Schema()
        schema.add(Predicate("R", 2))
        schema.add(Predicate("R", 2))
        assert len(schema) == 1

    def test_positions(self):
        schema = Schema([Predicate("R", 2), Predicate("S", 1)])
        assert len(schema.positions()) == 3

    def test_max_arity(self):
        schema = Schema([Predicate("R", 2), Predicate("S", 5)])
        assert schema.max_arity() == 5
        assert Schema().max_arity() == 0

    def test_union(self):
        left = Schema([Predicate("R", 2)])
        right = Schema([Predicate("S", 1)])
        merged = left.union(right)
        assert len(merged) == 2
        assert len(left) == 1  # union does not mutate

    def test_iteration_is_sorted(self):
        schema = Schema([Predicate("Z", 1), Predicate("A", 1)])
        assert [p.name for p in schema] == ["A", "Z"]

    def test_equality(self):
        assert Schema([Predicate("R", 1)]) == Schema([Predicate("R", 1)])
        assert Schema([Predicate("R", 1)]) != Schema([Predicate("S", 1)])
