"""Unit tests for repro.core.terms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    constants,
    is_constant,
    is_ground,
    is_null,
    is_variable,
    variables,
)


class TestTermBasics:
    def test_constant_equality(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_terms_of_different_kinds_are_never_equal(self):
        assert Constant("a") != Variable("a")
        assert Constant("a") != Null("a")
        assert Variable("a") != Null("a")

    def test_terms_are_hashable_and_distinct_in_sets(self):
        bag = {Constant("a"), Variable("a"), Null("a"), Constant("a")}
        assert len(bag) == 3

    def test_terms_are_immutable(self):
        constant = Constant("a")
        with pytest.raises(AttributeError):
            constant.name = "b"

    def test_empty_name_rejected(self):
        with pytest.raises(TypeError):
            Constant("")

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError):
            Variable(42)

    def test_string_rendering(self):
        assert str(Constant("a")) == "a"
        assert str(Variable("x")) == "?x"
        assert str(Null("n1")) == "_:n1"

    def test_repr_contains_kind_and_name(self):
        assert "Constant" in repr(Constant("a"))
        assert "'a'" in repr(Constant("a"))

    def test_ordering_is_total_on_terms(self):
        terms = [Variable("x"), Constant("b"), Null("n"), Constant("a")]
        ordered = sorted(terms)
        assert ordered[0] == Constant("a")
        assert ordered[1] == Constant("b")

    def test_ordering_against_non_terms_raises(self):
        with pytest.raises(TypeError):
            Constant("a") < 3


class TestPredicatesOnTerms:
    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("a"))

    def test_is_null(self):
        assert is_null(Null("n"))
        assert not is_null(Constant("n"))

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Null("x"))

    def test_is_ground(self):
        assert is_ground(Constant("a"))
        assert is_ground(Null("n"))
        assert not is_ground(Variable("x"))

    def test_constants_builder(self):
        assert constants(["a", 1]) == (Constant("a"), Constant("1"))

    def test_variables_builder(self):
        assert variables(["x", "y"]) == (Variable("x"), Variable("y"))


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        assert factory.fresh() != factory.fresh()

    def test_keyed_nulls_are_stable(self):
        factory = NullFactory()
        key = ("sigma", (("x", "a"),), "z")
        assert factory.for_key(key) is factory.for_key(key)

    def test_different_keys_give_different_nulls(self):
        factory = NullFactory()
        assert factory.for_key("k1") != factory.for_key("k2")

    def test_len_counts_created_nulls(self):
        factory = NullFactory()
        factory.fresh()
        factory.for_key("k")
        factory.for_key("k")
        assert len(factory) == 2

    def test_prefix_is_used(self):
        factory = NullFactory(prefix="w")
        assert factory.fresh().name.startswith("w")

    @given(st.lists(st.text(min_size=1, max_size=4), min_size=1, max_size=10))
    def test_keyed_nulls_are_injective(self, keys):
        factory = NullFactory()
        nulls = [factory.for_key(key) for key in keys]
        assert len(set(nulls)) == len(set(keys))
