"""Tests for the literature scenarios (Deep, LUBM, iBench) and the Table 1 registry."""

import pytest

from repro.exceptions import ExperimentConfigError
from repro.scenarios import (
    PAPER_TABLE_1,
    PAPER_TABLE_2_MS,
    build_deep,
    build_ibench,
    build_lubm,
    build_scenario,
    lubm_rules,
    paper_stats,
    scenario_names,
)
from repro.termination.linear import is_chase_finite_l
from repro.termination.simple_linear import is_chase_finite_sl
from repro.termination.weak_acyclicity import is_weakly_acyclic


class TestRegistry:
    def test_table1_covers_all_scenarios(self):
        assert len(scenario_names()) == 9
        assert paper_stats("LUBM-1").n_rules == 137
        assert paper_stats("Deep-300").n_rules == 4841
        assert paper_stats("ONT-256").arity_label == "[1,11]"

    def test_table2_covers_all_scenarios(self):
        assert set(PAPER_TABLE_2_MS) == set(PAPER_TABLE_1)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentConfigError):
            build_scenario("Deep-999")


class TestDeep:
    def test_structure_matches_table1_shape(self):
        scenario = build_deep("Deep-100", scale=0.2, seed=1)
        stats = scenario.measured_stats()
        assert stats.arity_min == stats.arity_max == 4
        assert stats.n_atoms == stats.n_shapes  # one distinct shape per source atom
        assert scenario.tgds.is_simple_linear()

    def test_rule_counts_scale_with_member(self):
        small = build_deep("Deep-100", scale=0.1)
        large = build_deep("Deep-300", scale=0.1)
        assert len(large.tgds) > len(small.tgds)

    def test_weakly_acyclic_and_finite(self):
        scenario = build_deep("Deep-100", scale=0.1)
        assert is_weakly_acyclic(scenario.tgds)
        assert is_chase_finite_sl(scenario.store.to_database(), scenario.tgds).finite

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentConfigError):
            build_deep("Deep-42")
        with pytest.raises(ExperimentConfigError):
            build_deep("Deep-100", scale=2.0)


class TestLUBM:
    def test_rules_match_table1(self):
        rules = lubm_rules()
        assert len(rules) == 137
        assert rules.is_simple_linear()
        schema = rules.schema()
        assert all(p.arity in (1, 2) for p in schema)

    def test_schema_size(self):
        scenario = build_lubm("LUBM-1")
        assert scenario.measured_stats().n_pred == 104

    def test_data_scales_with_member(self):
        small = build_lubm("LUBM-1")
        large = build_lubm("LUBM-10")
        assert large.store.total_rows() > small.store.total_rows()

    def test_termination_is_finite(self):
        scenario = build_lubm("LUBM-1")
        report = is_chase_finite_l(scenario.store.to_database(), scenario.tgds)
        assert report.finite

    def test_invalid_member(self):
        with pytest.raises(ExperimentConfigError):
            build_lubm("LUBM-5")


class TestIBench:
    @pytest.mark.parametrize("name", ["STB-128", "ONT-256"])
    def test_structure_matches_table1(self, name):
        scenario = build_ibench(name, tuples_per_source=5)
        stats = scenario.measured_stats()
        paper = PAPER_TABLE_1[name]
        assert stats.n_pred == paper.n_pred
        assert stats.n_rules == paper.n_rules
        assert stats.n_shapes == paper.n_shapes
        assert stats.arity_max <= paper.arity_max
        assert scenario.tgds.is_simple_linear()

    def test_weakly_acyclic_and_finite(self):
        scenario = build_ibench("STB-128", tuples_per_source=3)
        assert is_weakly_acyclic(scenario.tgds)
        assert is_chase_finite_l(scenario.store.to_database(), scenario.tgds).finite

    def test_invalid_member(self):
        with pytest.raises(ExperimentConfigError):
            build_ibench("STB-512")


class TestBuildScenario:
    def test_dispatch(self):
        assert build_scenario("Deep-100", scale=0.05).family == "Deep"
        assert build_scenario("LUBM-1").family == "LUBM"
        assert build_scenario("STB-128", scale=0.01).family == "iBench"

    def test_paper_stats_attached(self):
        scenario = build_scenario("LUBM-1")
        assert scenario.paper_stats.n_atoms == 99_547
