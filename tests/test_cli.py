"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def rule_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("R(x,y) -> R(y,z)\n")
    return path


@pytest.fixture
def finite_rule_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("R(x,y) -> S(y,z)\nS(x,y) -> T(x)\n")
    return path


@pytest.fixture
def fact_file(tmp_path):
    path = tmp_path / "facts.txt"
    path.write_text("R(a,b).\n")
    return path


class TestCheckCommand:
    def test_infinite_verdict(self, rule_file, fact_file, capsys):
        assert main(["check", "--rules", str(rule_file), "--facts", str(fact_file)]) == 0
        output = capsys.readouterr().out
        assert "INFINITE" in output
        assert "IsChaseFinite[SL]" in output

    def test_finite_verdict_with_induced_database(self, finite_rule_file, capsys):
        assert main(["check", "--rules", str(finite_rule_file)]) == 0
        assert "FINITE" in capsys.readouterr().out

    def test_forced_linear_algorithm(self, rule_file, fact_file, capsys):
        assert main(["check", "--rules", str(rule_file), "--facts", str(fact_file), "--algorithm", "l"]) == 0
        assert "IsChaseFinite[L]" in capsys.readouterr().out

    def test_auto_picks_l_for_non_simple_rules(self, tmp_path, capsys):
        path = tmp_path / "rules.txt"
        path.write_text("R(x,x) -> R(z,x)\n")
        facts = tmp_path / "facts.txt"
        facts.write_text("R(a,b).\n")
        assert main(["check", "--rules", str(path), "--facts", str(facts)]) == 0
        assert "IsChaseFinite[L]" in capsys.readouterr().out


class TestChaseCommand:
    @pytest.fixture
    def join_rule_file(self, tmp_path):
        path = tmp_path / "join_rules.txt"
        path.write_text("R(x,y) -> S(y,z)\nS(x,y), R(z,x) -> T(z,y)\n")
        return path

    def test_chase_with_facts(self, join_rule_file, fact_file, capsys):
        assert main(["chase", "--rules", str(join_rule_file), "--facts", str(fact_file)]) == 0
        output = capsys.readouterr().out
        assert "reached a fixpoint" in output
        assert "instance_size" in output

    def test_chase_strategy_and_backend_flags(self, join_rule_file, fact_file, capsys):
        for strategy in ("indexed", "naive"):
            for backend in ("instance", "relational"):
                code = main(
                    [
                        "chase",
                        "--rules", str(join_rule_file),
                        "--facts", str(fact_file),
                        "--strategy", strategy,
                        "--backend", backend,
                    ]
                )
                assert code == 0
                assert f"[{strategy}/{backend}]" in capsys.readouterr().out

    def test_chase_budget_stop(self, rule_file, fact_file, capsys):
        code = main(
            ["chase", "--rules", str(rule_file), "--facts", str(fact_file), "--max-atoms", "20"]
        )
        assert code == 0
        assert "stopped (max_atoms)" in capsys.readouterr().out

    def test_chase_induced_database_default(self, join_rule_file, capsys):
        assert main(["chase", "--rules", str(join_rule_file), "--variant", "restricted"]) == 0
        assert "restricted chase" in capsys.readouterr().out


class TestRunCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2

    def test_run_figure_smoke(self, capsys, tmp_path):
        csv_path = tmp_path / "figure1.csv"
        assert main(["run", "figure1", "--preset", "smoke", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert csv_path.exists()

    def test_run_table_smoke(self, capsys):
        assert main(["run", "table1", "--raw", "--scenarios", "LUBM-1"]) == 0
        assert "LUBM-1" in capsys.readouterr().out


class TestListCommand:
    def test_lists_experiments_and_presets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output and "table2" in output and "smoke" in output

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()
