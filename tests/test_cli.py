"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import main
from repro.obs import read_trace


@pytest.fixture
def rule_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("R(x,y) -> R(y,z)\n")
    return path


@pytest.fixture
def finite_rule_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("R(x,y) -> S(y,z)\nS(x,y) -> T(x)\n")
    return path


@pytest.fixture
def fact_file(tmp_path):
    path = tmp_path / "facts.txt"
    path.write_text("R(a,b).\n")
    return path


class TestCheckCommand:
    def test_infinite_verdict(self, rule_file, fact_file, capsys):
        assert main(["check", "--rules", str(rule_file), "--facts", str(fact_file)]) == 0
        output = capsys.readouterr().out
        assert "INFINITE" in output
        assert "IsChaseFinite[SL]" in output

    def test_finite_verdict_with_induced_database(self, finite_rule_file, capsys):
        assert main(["check", "--rules", str(finite_rule_file)]) == 0
        assert "FINITE" in capsys.readouterr().out

    def test_forced_linear_algorithm(self, rule_file, fact_file, capsys):
        assert main(["check", "--rules", str(rule_file), "--facts", str(fact_file), "--algorithm", "l"]) == 0
        assert "IsChaseFinite[L]" in capsys.readouterr().out

    def test_auto_picks_l_for_non_simple_rules(self, tmp_path, capsys):
        path = tmp_path / "rules.txt"
        path.write_text("R(x,x) -> R(z,x)\n")
        facts = tmp_path / "facts.txt"
        facts.write_text("R(a,b).\n")
        assert main(["check", "--rules", str(path), "--facts", str(facts)]) == 0
        assert "IsChaseFinite[L]" in capsys.readouterr().out


class TestChaseCommand:
    @pytest.fixture
    def join_rule_file(self, tmp_path):
        path = tmp_path / "join_rules.txt"
        path.write_text("R(x,y) -> S(y,z)\nS(x,y), R(z,x) -> T(z,y)\n")
        return path

    def test_chase_with_facts(self, join_rule_file, fact_file, capsys):
        assert main(["chase", "--rules", str(join_rule_file), "--facts", str(fact_file)]) == 0
        output = capsys.readouterr().out
        assert "reached a fixpoint" in output
        assert "instance_size" in output

    def test_chase_strategy_and_backend_flags(self, join_rule_file, fact_file, capsys):
        for strategy in ("indexed", "naive"):
            for backend in ("instance", "relational", "sqlite"):
                code = main(
                    [
                        "chase",
                        "--rules", str(join_rule_file),
                        "--facts", str(fact_file),
                        "--strategy", strategy,
                        "--backend", backend,
                    ]
                )
                assert code == 0
                assert f"[{strategy}/{backend}]" in capsys.readouterr().out

    def test_chase_sql_strategy_on_sqlite_backend(self, join_rule_file, fact_file, capsys):
        code = main(
            [
                "chase",
                "--rules", str(join_rule_file),
                "--facts", str(fact_file),
                "--strategy", "sql",
                "--backend", "sqlite",
            ]
        )
        assert code == 0
        assert "[sql/sqlite]" in capsys.readouterr().out

    def test_chase_persistent_sqlite_reports_store_stats(
        self, join_rule_file, fact_file, tmp_path, capsys
    ):
        db_path = tmp_path / "chase.db"
        code = main(
            [
                "chase",
                "--rules", str(join_rule_file),
                "--facts", str(fact_file),
                "--backend", f"sqlite:{db_path}",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "store_atoms: " in output
        assert f"store_file: {db_path} (" in output
        assert db_path.exists() and db_path.stat().st_size > 0
        # The transient backends stay quiet about store files.
        assert main(
            ["chase", "--rules", str(join_rule_file), "--facts", str(fact_file)]
        ) == 0
        assert "store_file" not in capsys.readouterr().out

    def test_chase_no_materialize_reports_counts_from_the_store(
        self, join_rule_file, fact_file, tmp_path, capsys, monkeypatch
    ):
        # --no-materialize must never decode the fixpoint into an Instance:
        # poison to_instance and the run still reports every count.
        from repro.storage.sqlbackend import SqliteAtomStore

        monkeypatch.setattr(
            SqliteAtomStore,
            "to_instance",
            lambda store: pytest.fail("--no-materialize must not materialize"),
        )
        code = main(
            [
                "chase",
                "--rules", str(join_rule_file),
                "--facts", str(fact_file),
                "--backend", f"sqlite:{tmp_path / 'lazy.db'}",
                "--no-materialize",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "materialized: no" in output
        assert "instance_size: " in output
        assert "store_atoms: " in output

    def test_chase_no_materialize_stats_match_the_eager_run(
        self, join_rule_file, fact_file, capsys
    ):
        def stats(argv):
            assert main(argv) == 0
            lines = capsys.readouterr().out.splitlines()
            return [
                line
                for line in lines
                if "elapsed" not in line and "materialized" not in line
            ]

        base = [
            "chase", "--rules", str(join_rule_file), "--facts", str(fact_file),
            "--backend", "sqlite",
        ]
        eager = stats(base)
        assert stats(base + ["--no-materialize"]) == eager
        # The default run reports that it did materialise.
        assert main(base) == 0
        assert "materialized: yes" in capsys.readouterr().out

    def test_chase_budget_stop(self, rule_file, fact_file, capsys):
        code = main(
            ["chase", "--rules", str(rule_file), "--facts", str(fact_file), "--max-atoms", "20"]
        )
        assert code == 0
        assert "stopped (max_atoms)" in capsys.readouterr().out

    def test_chase_induced_database_default(self, join_rule_file, capsys):
        assert main(["chase", "--rules", str(join_rule_file), "--variant", "restricted"]) == 0
        assert "restricted chase" in capsys.readouterr().out

    def test_chase_parallel_matches_serial_output(self, join_rule_file, fact_file, capsys):
        def stats(argv):
            assert main(argv) == 0
            lines = capsys.readouterr().out.splitlines()
            return [line for line in lines if "elapsed" not in line and "[" not in line]

        base = ["chase", "--rules", str(join_rule_file), "--facts", str(fact_file)]
        serial = stats(base)
        for n in ("2", "4"):
            assert stats(base + ["--parallel", n]) == serial
        assert stats(base + ["--parallel", "2", "--executor", "process"]) == serial

    def test_chase_parallel_banner_names_the_pool(self, join_rule_file, fact_file, capsys):
        assert main(
            ["chase", "--rules", str(join_rule_file), "--facts", str(fact_file), "--parallel", "4"]
        ) == 0
        assert "[indexed/instance/4w]" in capsys.readouterr().out

    def test_chase_invalid_parallel(self, join_rule_file, capsys):
        assert main(["chase", "--rules", str(join_rule_file), "--parallel", "0"]) == 2
        assert "--parallel" in capsys.readouterr().err

    def test_chase_parallel_rejects_naive_strategy(self, join_rule_file, capsys):
        code = main(
            ["chase", "--rules", str(join_rule_file), "--strategy", "naive", "--parallel", "2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "indexed" in err and "--parallel" in err
        # --parallel 1 with the naive strategy stays valid (serial engine).
        assert main(
            ["chase", "--rules", str(join_rule_file), "--strategy", "naive", "--parallel", "1"]
        ) == 0


class TestRunCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2

    def test_run_figure_smoke(self, capsys, tmp_path):
        csv_path = tmp_path / "figure1.csv"
        assert main(["run", "figure1", "--preset", "smoke", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert csv_path.exists()

    def test_run_table_smoke(self, capsys):
        assert main(["run", "table1", "--raw", "--scenarios", "LUBM-1"]) == 0
        assert "LUBM-1" in capsys.readouterr().out


class TestErrorPaths:
    """Unknown flag values must exit non-zero with a readable message."""

    def _assert_argparse_rejects(self, argv, capsys, fragment):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "invalid choice" in stderr
        assert fragment in stderr

    def test_unknown_backend(self, rule_file, capsys):
        # --backend is free-form (it must admit sqlite:<path>), so the CLI
        # validates it itself: exit 2 with a one-line message, no traceback.
        assert main(["chase", "--rules", str(rule_file), "--backend", "oracle"]) == 2
        stderr = capsys.readouterr().err
        assert "oracle" in stderr and "sqlite" in stderr
        assert "Traceback" not in stderr

    def test_malformed_sqlite_spec(self, rule_file, capsys):
        assert main(["chase", "--rules", str(rule_file), "--backend", "sqlite:"]) == 2
        stderr = capsys.readouterr().err
        assert "malformed sqlite backend spec" in stderr
        assert "Traceback" not in stderr

    def test_unopenable_sqlite_path(self, rule_file, tmp_path, capsys):
        bogus = tmp_path / "missing" / "dir" / "chase.db"
        assert main(
            ["chase", "--rules", str(rule_file), "--backend", f"sqlite:{bogus}"]
        ) == 2
        assert "cannot open sqlite database" in capsys.readouterr().err

    def test_sql_strategy_requires_sqlite_backend(self, rule_file, capsys):
        assert main(["chase", "--rules", str(rule_file), "--strategy", "sql"]) == 2
        assert "--backend sqlite" in capsys.readouterr().err

    def test_reopened_file_with_conflicting_arity_exits_two(self, tmp_path, capsys):
        # Reopening a persisted file with rules that recreate one of its
        # predicates at a different arity: one-line exit 2, no traceback.
        db_path = tmp_path / "resume.db"
        two = tmp_path / "two.txt"
        two.write_text("R(x,y) -> S(y,z)\n")
        three = tmp_path / "three.txt"
        three.write_text("R(x,y) -> S(x,y,z)\n")
        facts = tmp_path / "facts.txt"
        facts.write_text("R(a,b).\n")
        base = ["chase", "--facts", str(facts), "--backend", f"sqlite:{db_path}"]
        assert main(base + ["--rules", str(two)]) == 0
        capsys.readouterr()
        assert main(base + ["--rules", str(three)]) == 2
        stderr = capsys.readouterr().err
        assert "already exists with arity" in stderr
        assert "Traceback" not in stderr

    def test_unknown_strategy(self, rule_file, capsys):
        self._assert_argparse_rejects(
            ["chase", "--rules", str(rule_file), "--strategy", "psychic"], capsys, "psychic"
        )

    def test_unknown_variant(self, rule_file, capsys):
        self._assert_argparse_rejects(
            ["chase", "--rules", str(rule_file), "--variant", "turbo"], capsys, "turbo"
        )

    def test_unknown_check_algorithm(self, rule_file, capsys):
        self._assert_argparse_rejects(
            ["check", "--rules", str(rule_file), "--algorithm", "magic"], capsys, "magic"
        )

    def test_unknown_run_preset(self, capsys):
        self._assert_argparse_rejects(
            ["run", "figure1", "--preset", "galactic"], capsys, "galactic"
        )

    def test_unknown_sweep_preset(self, capsys):
        self._assert_argparse_rejects(
            ["sweep", "--preset", "galactic"], capsys, "galactic"
        )

    def test_unknown_sweep_kind(self, capsys):
        assert main(["sweep", "--kinds", "sl,bogus"]) == 2
        stderr = capsys.readouterr().err
        assert "bogus" in stderr and "sl,l" in stderr

    def test_empty_sweep_kinds(self, capsys):
        assert main(["sweep", "--kinds", ","]) == 2
        assert "subset" in capsys.readouterr().err

    def test_sweep_invalid_workers(self, capsys):
        assert main(["sweep", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_sweep_invalid_chase_workers(self, capsys):
        assert main(["sweep", "--chase-workers", "0"]) == 2
        assert "--chase-workers" in capsys.readouterr().err

    def test_unknown_chase_executor(self, rule_file, capsys):
        self._assert_argparse_rejects(
            ["chase", "--rules", str(rule_file), "--executor", "quantum"], capsys, "quantum"
        )

    def test_sweep_invalid_limit(self, capsys):
        assert main(["sweep", "--limit", "0"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_sweep_checkpoint_config_mismatch(self, tmp_path, capsys):
        checkpoint = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--kinds", "sl", "--checkpoint", str(checkpoint), "--limit", "1"]
        ) == 3
        capsys.readouterr()
        # Same checkpoint, different sweep mode: refused with a readable message.
        assert main(
            ["sweep", "--kinds", "l", "--checkpoint", str(checkpoint), "--limit", "1"]
        ) == 2
        assert "different sweep configuration" in capsys.readouterr().err


class TestFuzzCommand:
    @pytest.fixture
    def corpus_dir(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "simple.case").write_text(
            "# name: simple\n"
            "--- rules ---\n"
            "P(x) -> Q(x)\n"
            "--- facts ---\n"
            'P(a).\nP("100%").\n'
        )
        return corpus

    def test_replay_corpus_clean_exits_zero(self, corpus_dir, capsys):
        assert main(["fuzz", "--replay", str(corpus_dir), "--pools", "quick"]) == 0
        output = capsys.readouterr().out
        assert "ok       simple" in output
        assert "CLEAN" in output

    def test_replay_single_case_file(self, corpus_dir, capsys):
        assert main(
            ["fuzz", "--replay", str(corpus_dir / "simple.case"), "--pools", "quick"]
        ) == 0
        assert "replayed simple: ok" in capsys.readouterr().out

    def test_replay_waived_case_is_skipped(self, tmp_path, capsys):
        case = tmp_path / "deferred.case"
        case.write_text(
            "# name: deferred\n"
            "# waived: documented deferral for the test\n"
            "--- rules ---\n"
            "P(x) -> Q(x)\n"
            "--- facts ---\n"
            "P(a).\n"
        )
        assert main(["fuzz", "--replay", str(case)]) == 0
        assert "waived   deferred" in capsys.readouterr().out

    def test_replay_divergent_case_exits_one(self, tmp_path, capsys):
        # A conform-marked case whose body cannot parse is a divergence.
        case = tmp_path / "broken.case"
        case.write_text(
            "# name: broken\n"
            "--- rules ---\n"
            "P(x) ->\n"
            "--- facts ---\n"
            "P(a).\n"
        )
        assert main(["fuzz", "--replay", str(case), "--pools", "quick"]) == 1
        assert "DIVERGED broken" in capsys.readouterr().out

    def test_seed_replay_plus_small_search_exits_zero(self, corpus_dir, capsys):
        code = main(
            [
                "fuzz",
                "--max-cases", "2",
                "--seed", "3",
                "--families", "sticky",
                "--corpus", str(corpus_dir),
            ]
        )
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_unknown_corpus_path_exits_two(self, tmp_path, capsys):
        code = main(["fuzz", "--max-cases", "0", "--corpus", str(tmp_path / "nope")])
        assert code == 2
        stderr = capsys.readouterr().err
        assert "does not exist" in stderr
        assert "Traceback" not in stderr

    def test_unknown_replay_path_exits_two(self, tmp_path, capsys):
        assert main(["fuzz", "--replay", str(tmp_path / "ghost.case")]) == 2
        stderr = capsys.readouterr().err
        assert "cannot read corpus case" in stderr
        assert "Traceback" not in stderr

    def test_malformed_replay_case_exits_two(self, tmp_path, capsys):
        case = tmp_path / "malformed.case"
        case.write_text("no sections at all\n")
        assert main(["fuzz", "--replay", str(case)]) == 2
        stderr = capsys.readouterr().err
        assert "rules" in stderr
        assert "Traceback" not in stderr

    def test_unknown_family_exits_two(self, capsys):
        assert main(["fuzz", "--max-cases", "1", "--families", "bogus"]) == 2
        stderr = capsys.readouterr().err
        assert "bogus" in stderr and "heavy_skew" in stderr

    def test_negative_budgets_exit_two(self, capsys):
        assert main(["fuzz", "--time-budget", "-1"]) == 2
        assert "--time-budget" in capsys.readouterr().err
        assert main(["fuzz", "--max-cases", "-1"]) == 2
        assert "--max-cases" in capsys.readouterr().err

    def test_interrupted_run_exits_three(self, capsys, monkeypatch):
        # A KeyboardInterrupt mid-run must surface as the documented
        # pending/interrupted exit code, not a traceback.
        import repro.fuzz.harness as harness_mod

        def raising_probe(database, tgds):
            raise KeyboardInterrupt

        monkeypatch.setattr(harness_mod, "_probe_edges", raising_probe)
        code = main(["fuzz", "--max-cases", "1", "--families", "sticky"])
        assert code == 3
        assert "INTERRUPTED" in capsys.readouterr().out

    def test_divergence_beats_interrupt_in_exit_code(self, tmp_path, capsys, monkeypatch):
        import repro.core.parser as parser_mod

        def legacy_strip(line):
            for prefix in ("%", "#", "//"):
                at = line.find(prefix)
                if at != -1:
                    line = line[:at]
            return line

        monkeypatch.setattr(parser_mod, "_strip_comment", legacy_strip)
        code = main(["fuzz", "--max-cases", "0", "--families", "heavy_skew"])
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_malformed_check_rules_exit_two_without_traceback(self, tmp_path, capsys):
        bad = tmp_path / "bad.rules"
        bad.write_text("P(x) ->\n")
        assert main(["check", "--rules", str(bad)]) == 2
        stderr = capsys.readouterr().err
        assert "non-empty body and head" in stderr
        assert "Traceback" not in stderr

    def test_malformed_chase_facts_exit_two_without_traceback(self, tmp_path, capsys):
        rules = tmp_path / "ok.rules"
        rules.write_text("P(x) -> Q(x)\n")
        facts = tmp_path / "bad.facts"
        facts.write_text('P("").\n')  # empty constant name
        assert main(["chase", "--rules", str(rules), "--facts", str(facts)]) == 2
        stderr = capsys.readouterr().err
        assert "invalid term" in stderr
        assert "Traceback" not in stderr

    def test_missing_rule_file_exits_two_without_traceback(self, tmp_path, capsys):
        ghost = tmp_path / "ghost.rules"
        assert main(["check", "--rules", str(ghost)]) == 2
        stderr = capsys.readouterr().err
        assert "cannot read" in stderr
        assert "Traceback" not in stderr


class TestSweepCommand:
    def test_sweep_smoke_runs_and_summarises(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            ["sweep", "--preset", "smoke", "--kinds", "sl", "--csv", str(csv_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sweep[sl]" in output
        assert "0 pending" in output
        assert csv_path.exists()

    def test_sweep_resumes_from_checkpoint(self, capsys, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        assert (
            main(
                ["sweep", "--preset", "smoke", "--kinds", "sl",
                 "--checkpoint", str(checkpoint), "--limit", "3"]
            )
            == 3
        )
        first = capsys.readouterr().out
        assert "3 task(s) done" in first
        assert (
            main(["sweep", "--preset", "smoke", "--kinds", "sl", "--checkpoint", str(checkpoint)])
            == 0
        )
        second = capsys.readouterr().out
        assert "(3 resumed)" in second and "0 pending" in second

    def test_sweep_with_already_complete_checkpoint_exits_zero(self, capsys, tmp_path):
        # Regression: a checkpoint with zero remaining tasks must exit 0 and
        # emit the byte-identical aggregate table, not re-plan any work.
        checkpoint = tmp_path / "sweep.jsonl"
        argv = ["sweep", "--preset", "smoke", "--kinds", "sl", "--checkpoint", str(checkpoint)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        content_before = checkpoint.read_bytes()

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 pending" in second
        assert "(9 resumed)" in second
        assert checkpoint.read_bytes() == content_before

        def table(text):
            start = text.index("sweep[sl]")
            return text[start:].rsplit("sweep [", 1)[0]

        assert table(first) == table(second)

        # A --limit on the complete checkpoint is a no-op, still exit 0.
        assert main(argv + ["--limit", "1"]) == 0
        assert "0 pending" in capsys.readouterr().out

    def test_sweep_chase_kind_rows_identical_across_chase_workers(self, capsys):
        def table(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return out[out.index("sweep[chase]"):].rsplit("sweep [", 1)[0]

        base = ["sweep", "--preset", "smoke", "--kinds", "chase"]
        assert table(base) == table(base + ["--chase-workers", "3"])

    def test_sweep_chase_backend_is_an_execution_knob(self, capsys, tmp_path):
        # The sqlite backend changes where each task materialises, never the
        # aggregate tables — and a checkpoint written under one backend
        # resumes under another (the knob stays out of the fingerprint).
        def table(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return out[out.index("sweep[chase]"):].rsplit("sweep [", 1)[0]

        base = ["sweep", "--preset", "smoke", "--kinds", "chase"]
        reference = table(base)
        assert table(base + ["--chase-backend", "sqlite"]) == reference

        checkpoint = tmp_path / "sweep.jsonl"
        assert main(base + ["--checkpoint", str(checkpoint), "--limit", "2"]) == 3
        capsys.readouterr()
        resumed = base + ["--checkpoint", str(checkpoint), "--chase-backend", "sqlite"]
        assert table(resumed) == reference


class TestTraceCommands:
    """``--trace`` on chase/sweep/fuzz and the ``trace-report`` profiler."""

    @pytest.fixture
    def tc_rule_file(self, tmp_path):
        path = tmp_path / "tc_rules.txt"
        path.write_text("E(x,y) -> T(x,y)\nE(x,y), T(y,z) -> T(x,z)\n")
        return path

    @pytest.fixture
    def tc_fact_file(self, tmp_path):
        path = tmp_path / "tc_facts.txt"
        path.write_text("E(a,b).\nE(b,c).\n")
        return path

    def test_chase_trace_then_report(self, tc_rule_file, tc_fact_file, tmp_path, capsys):
        trace = tmp_path / "chase.jsonl"
        code = main(
            ["chase", "--rules", str(tc_rule_file), "--facts", str(tc_fact_file),
             "--trace", str(trace)]
        )
        assert code == 0
        assert f"trace: {trace}" in capsys.readouterr().out

        events = read_trace(trace)
        types = [event["type"] for event in events]
        assert types[0] == "trace_start" and types[1] == "chase_start"
        assert types[-1] == "chase_end"
        assert "round" in types and "rule_round" in types

        assert main(["trace-report", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "per round:" in report
        assert "hot rules:" in report
        assert "cross-check: round events sum exactly" in report

    def test_sweep_trace_records_tasks(self, tmp_path, capsys):
        trace = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", "--preset", "smoke", "--kinds", "sl", "--limit", "2",
             "--trace", str(trace)]
        )
        assert code == 3  # tasks remain pending under --limit
        capsys.readouterr()
        types = [event["type"] for event in read_trace(trace)]
        assert types[0] == "trace_start" and types[1] == "sweep_start"
        assert types.count("sweep_task") == 2
        assert types[-1] == "sweep_end"

    def test_fuzz_replay_trace_records_cases(self, tmp_path, capsys):
        case = tmp_path / "simple.case"
        case.write_text(
            "# name: simple\n--- rules ---\nP(x) -> Q(x)\n--- facts ---\nP(a).\n"
        )
        trace = tmp_path / "fuzz.jsonl"
        code = main(
            ["fuzz", "--replay", str(case), "--pools", "quick", "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        types = [event["type"] for event in read_trace(trace)]
        assert types[0] == "trace_start" and types[1] == "fuzz_start"
        assert "fuzz_case" in types
        assert types[-1] == "fuzz_end"

    def test_unwritable_trace_path_exits_two(self, tc_rule_file, tmp_path, capsys):
        bogus = tmp_path / "missing" / "dir" / "trace.jsonl"
        code = main(["chase", "--rules", str(tc_rule_file), "--trace", str(bogus)])
        assert code == 2
        stderr = capsys.readouterr().err
        assert "cannot write trace" in stderr
        assert "Traceback" not in stderr

    def test_trace_report_on_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "ghost.jsonl")]) == 2
        stderr = capsys.readouterr().err
        assert "ghost.jsonl" in stderr
        assert "Traceback" not in stderr

    def test_trace_report_on_malformed_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        assert main(["trace-report", str(bad)]) == 2
        stderr = capsys.readouterr().err
        assert "not valid JSON" in stderr
        assert "Traceback" not in stderr

    def test_trace_report_rejects_non_positive_top(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"type": "trace_start", "t": 0, "v": 1, "tool": "chase"}\n')
        assert main(["trace-report", str(trace), "--top", "0"]) == 2
        assert "--top" in capsys.readouterr().err


class TestListCommand:
    def test_lists_experiments_and_presets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output and "table2" in output and "smoke" in output

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestConsoleEntryPoint:
    """The installed ``repro-experiments`` script, exercised as a subprocess.

    Everything above calls :func:`repro.cli.main` in-process; these tests pin
    the packaging contract instead — the console entry point declared in
    ``pyproject.toml`` resolves, parses argv, and propagates exit codes
    through a real process boundary.  When the package is not installed
    (plain ``PYTHONPATH=src`` runs), an equivalent ``python -c`` shim invokes
    the same ``repro.cli:main`` target the script declares.
    """

    @pytest.fixture
    def entry_point(self):
        import shutil
        import sys as _sys

        script = shutil.which("repro-experiments")
        if script is not None:
            return [script]
        return [
            _sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        ]

    @pytest.fixture
    def subprocess_env(self):
        import os
        from pathlib import Path

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
        return env

    def _run(self, entry_point, env, *argv):
        import subprocess

        return subprocess.run(
            entry_point + list(argv),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_chase_help_exits_zero(self, entry_point, subprocess_env):
        completed = self._run(entry_point, subprocess_env, "chase", "--help")
        assert completed.returncode == 0, completed.stderr
        assert "--rules" in completed.stdout
        assert "--strategy" in completed.stdout

    def test_chase_run_exits_zero(self, entry_point, subprocess_env, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text("R(x,y) -> S(y,z)\nS(x,y) -> T(x)\n")
        facts = tmp_path / "facts.txt"
        facts.write_text("R(a,b).\n")
        completed = self._run(
            entry_point, subprocess_env,
            "chase", "--rules", str(rules), "--facts", str(facts),
        )
        assert completed.returncode == 0, completed.stderr
        assert "reached a fixpoint" in completed.stdout
        assert "instance_size" in completed.stdout

    def test_usage_error_exits_two(self, entry_point, subprocess_env, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text("R(x,y) -> S(y,z)\n")
        completed = self._run(
            entry_point, subprocess_env,
            "chase", "--rules", str(rules), "--parallel", "0",
        )
        assert completed.returncode == 2
        assert "--parallel must be >= 1" in completed.stderr
