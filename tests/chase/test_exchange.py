"""Unit tests for the shuffle exchange: routing, framing, skew, crash recovery.

The conformance property suite sweeps random programs across the exchange
axis; this file pins the exchange machinery itself — the repartition
routing table, the peer-channel framing protocol, the skew detector — and
the crash-mid-exchange persistence guarantee on sqlite backends.
"""

import pytest

from repro.chase.engine import chase, make_backend_store
from repro.chase.exchange import (
    EXCHANGES,
    FrameAssembler,
    RoutingTable,
    SkewDetector,
    iter_frames,
    parse_crash_spec,
)
from repro.chase.matching import JoinPlan
from repro.chase.parallel import parallel_chase
from repro.chase.result import ChaseLimits
from repro.core.atoms import Atom
from repro.core.indexing import key_partition_of, stable_key_hash
from repro.core.parser import parse_atom, parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.generators import generate_skew_workload
from repro.obs.events import ListTraceSink, validate_event
from repro.obs.tracer import Tracer
from repro.storage.sqlbackend import SqliteAtomStore

from tests.chase.test_differential import random_case
from tests.helpers import chase_result_fingerprint as _fingerprint

LIMITS = ChaseLimits(max_atoms=400, max_rounds=12)


def _ground(text: str) -> Atom:
    return parse_atom(text, as_variable=False)


def _join_plan() -> JoinPlan:
    k, v, d = Variable("K"), Variable("V"), Variable("D")
    mid = Predicate("mid", 2)
    dim = Predicate("dim", 2)
    return JoinPlan((Atom(mid, (k, v)), Atom(dim, (k, d))), 0)


class TestStableKeyHash:
    def test_deterministic_and_type_tagged(self):
        key = (2, ("semi", (Constant("a"), Constant("b"))))
        assert stable_key_hash(key) == stable_key_hash(key)
        # int vs string vs bool leaves must not collide via str() flattening
        assert stable_key_hash((1,)) != stable_key_hash(("1",))
        assert stable_key_hash((True,)) != stable_key_hash((1,))

    def test_nesting_is_significant(self):
        flat = (1, 2, 3)
        nested = (1, (2, 3))
        assert stable_key_hash(flat) != stable_key_hash(nested)

    def test_rejects_unhashable_leaf_types(self):
        with pytest.raises(TypeError):
            stable_key_hash((1, object()))

    def test_key_partition_bounds(self):
        for n_workers in (1, 2, 3, 7):
            for seed in range(20):
                owner = key_partition_of((seed, "k"), n_workers)
                assert 0 <= owner < n_workers
        assert key_partition_of((5, "x"), 1) == 0


class TestRoutingTable:
    def test_every_unit_has_exactly_one_owner(self):
        plan = _join_plan()
        table = RoutingTable(4, (plan.partition_positions,))
        atoms = [_ground(f"mid(k{i % 3}, v{i})") for i in range(30)]
        for atom in atoms:
            owners = {table.work_owner(0, atom)}
            assert len(owners) == 1
            assert 0 <= owners.pop() < 4
            assert 0 <= table.atom_owner(atom) < 4
        # co-location: same join key, same worker (no heavy table)
        by_key = {}
        for atom in atoms:
            by_key.setdefault(atom.terms[0], set()).add(table.work_owner(0, atom))
        assert all(len(owners) == 1 for owners in by_key.values())

    def test_heavy_split_spreads_then_reunifies(self):
        plan = _join_plan()
        table = RoutingTable(4, (plan.partition_positions,))
        heavy_key = [_ground(f"mid(hub, v{i})") for i in range(64)]
        route = table.plan_route_hash(0, heavy_key[0])
        plain_owner = table.work_owner(0, heavy_key[0])
        table.set_heavy(((((0, route)), (0, 1, 2, 3)),))
        split_owners = {table.work_owner(0, atom) for atom in heavy_key}
        assert len(split_owners) > 1, "heavy key must spread across workers"
        # the split moves only *work*: key and atom ownership — where the
        # global dedups reunify duplicates — never consult the heavy table
        for atom in heavy_key:
            assert table.atom_owner(atom) == RoutingTable(
                4, (plan.partition_positions,)
            ).atom_owner(atom)
        # splitting is deterministic: same atom, same split member
        again = RoutingTable(
            4, (plan.partition_positions,), ((((0, route)), (0, 1, 2, 3)),)
        )
        for atom in heavy_key:
            assert again.work_owner(0, atom) == table.work_owner(0, atom)
        table.set_heavy(())
        assert table.work_owner(0, heavy_key[0]) == plain_owner

    def test_heavy_routes_roundtrip_as_plain_tuples(self):
        table = RoutingTable(2, ((0,),), (((0, 99), (0, 1)),))
        assert table.heavy_routes == (((0, 99), (0, 1)),)
        rebuilt = RoutingTable(2, ((0,),), table.heavy_routes)
        assert rebuilt.heavy_routes == table.heavy_routes

    def test_rejects_empty_worker_pool(self):
        with pytest.raises(ValueError):
            RoutingTable(0, ())


class TestFraming:
    def test_empty_payload_still_sends_one_frame(self):
        frames = list(iter_frames(3, "route", 1, []))
        assert len(frames) == 1
        assert frames[0] == (3, "route", 1, 0, 1, ())

    def test_chunking_and_in_order_reassembly(self):
        items = list(range(25))
        frames = list(iter_frames(0, "keys", 2, items, chunk_size=10))
        assert [len(frame[5]) for frame in frames] == [10, 10, 5]
        assembler = FrameAssembler()
        for frame in frames[:-1]:
            assert assembler.feed(frame) is None
        assert assembler.feed(frames[-1]) == (0, "keys", 2)
        assert assembler.pop(0, "keys", 2) == items

    def test_out_of_order_frames_reassemble(self):
        items = list(range(12))
        frames = list(iter_frames(1, "atoms", 0, items, chunk_size=5))
        assembler = FrameAssembler()
        assembler.feed(frames[2])
        assembler.feed(frames[0])
        assert assembler.pop(1, "atoms", 0) is None  # still incomplete
        assert assembler.feed(frames[1]) == (1, "atoms", 0)
        assert assembler.pop(1, "atoms", 0) == items

    def test_streams_from_later_phases_buffer_independently(self):
        assembler = FrameAssembler()
        early = next(iter_frames(0, "route", 1, ["a"]))
        late = next(iter_frames(0, "atoms", 1, ["z"]))
        assert assembler.feed(late) == (0, "atoms", 1)
        assert assembler.feed(early) == (0, "route", 1)
        assert assembler.pop(0, "route", 1) == ["a"]
        assert assembler.pop(0, "atoms", 1) == ["z"]

    def test_duplicate_chunk_is_an_error(self):
        frame = next(iter_frames(0, "route", 0, ["x"], chunk_size=1))
        assembler = FrameAssembler()
        assembler.feed(frame)
        # completed streams stay poppable, but replays of a pending chunk fail
        frames = list(iter_frames(0, "keys", 0, ["a", "b"], chunk_size=1))
        assembler.feed(frames[0])
        with pytest.raises(ValueError, match="duplicate chunk"):
            assembler.feed(frames[0])

    def test_inconsistent_chunk_count_is_an_error(self):
        assembler = FrameAssembler()
        assembler.feed((0, "route", 0, 0, 3, ("a",)))
        with pytest.raises(ValueError, match="announced 3 chunks"):
            assembler.feed((0, "route", 0, 1, 2, ("b",)))

    def test_malformed_frame_is_an_error(self):
        assembler = FrameAssembler()
        with pytest.raises(ValueError, match="malformed"):
            assembler.feed((0, "route", 0, 2, 2, ()))
        with pytest.raises(ValueError, match="malformed"):
            assembler.feed((0, "route", 0, 0, 0, ()))

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_frames(0, "route", 0, ["x"], chunk_size=0))


class TestSkewDetector:
    def _delta(self, heavy: int, light: int):
        atoms = [_ground(f"mid(hub, v{i})") for i in range(heavy)]
        atoms += [_ground(f"mid(k{i}, w{i})") for i in range(light)]
        return atoms

    def _detector(self, n_workers=4, **kwargs):
        plan = _join_plan()
        return SkewDetector(
            [(7, plan.body[0].predicate, plan.partition_positions)],
            n_workers,
            **kwargs,
        )

    def test_heavy_hub_is_flagged_with_full_split(self):
        detector = self._detector()
        heavy = detector.heavy_routes(self._delta(heavy=60, light=12))
        assert len(heavy) == 1
        (plan_id, _), split = heavy[0]
        assert plan_id == 7
        assert split == (0, 1, 2, 3)

    def test_balanced_delta_is_not_flagged(self):
        detector = self._detector()
        atoms = [_ground(f"mid(k{i % 8}, v{i})") for i in range(64)]
        assert detector.heavy_routes(atoms) == ()

    def test_min_count_floor_suppresses_tiny_routes(self):
        detector = self._detector(min_count=16)
        # 10 atoms all on one key: dominant share but below the floor
        assert detector.heavy_routes(self._delta(heavy=10, light=2)) == ()

    def test_single_worker_never_splits(self):
        detector = self._detector(n_workers=1)
        assert detector.heavy_routes(self._delta(heavy=100, light=0)) == ()

    def test_linear_plans_are_ignored(self):
        # no join key -> nothing to split, whatever the distribution
        detector = SkewDetector([(0, Predicate("mid", 2), ())], 4)
        assert detector.heavy_routes(self._delta(heavy=100, light=0)) == ()

    def test_detection_is_deterministic(self):
        delta = self._delta(heavy=50, light=10)
        assert self._detector().heavy_routes(delta) == self._detector().heavy_routes(
            delta
        )

    def test_histograms_feed_the_metrics_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        detector = self._detector(metrics=registry)
        detector.heavy_routes(self._delta(heavy=40, light=8))
        snapshot = registry.snapshot()
        histograms = snapshot.get("histograms", [])
        assert any(
            entry["name"] == "exchange_partition_delta" for entry in histograms
        )


class TestParseCrashSpec:
    def test_shapes(self):
        assert parse_crash_spec(None) is None
        assert parse_crash_spec("") is None
        assert parse_crash_spec("3") == (3, None)
        assert parse_crash_spec("2:1") == (2, 1)


class TestShuffleConformance:
    @pytest.mark.parametrize("seed", range(4))
    def test_shuffle_matches_coordinator_and_serial(self, seed):
        database, tgds = random_case(seed)
        expected = _fingerprint(chase(database, tgds, limits=LIMITS))
        for workers in (1, 2, 4):
            coordinator = parallel_chase(
                database, tgds, workers=workers, limits=LIMITS
            )
            shuffled = parallel_chase(
                database, tgds, workers=workers, limits=LIMITS, exchange="shuffle"
            )
            assert _fingerprint(coordinator) == expected
            assert _fingerprint(shuffled) == expected

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_skew_split_active_and_result_identical(self, executor):
        workload = generate_skew_workload(n_keys=8, rows=192, skew=1.5)
        limits = ChaseLimits(max_atoms=5_000, max_rounds=10)
        expected = _fingerprint(chase(workload.database, workload.tgds, limits=limits))
        sink = ListTraceSink()
        tracer = Tracer(sink, tool="chase")
        result = parallel_chase(
            workload.database,
            workload.tgds,
            workers=4,
            executor=executor,
            backend="sqlite" if executor == "process" else "instance",
            limits=limits,
            exchange="shuffle",
            tracer=tracer,
        )
        tracer.close()
        assert _fingerprint(result) == expected
        for event in sink.events:
            validate_event(event)
        repartitions = [e for e in sink.events if e["type"] == "repartition"]
        assert repartitions, "the skewed workload must trip the heavy split"
        assert all(e["workers"] == [0, 1, 2, 3] for e in repartitions)
        exchanges = [e for e in sink.events if e["type"] == "exchange"]
        assert {e["worker"] for e in exchanges} == {0, 1, 2, 3}

    def test_budgets_match_coordinator_semantics(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> R(y,z)")
        for limits in (ChaseLimits(max_atoms=10), ChaseLimits(max_rounds=3)):
            expected = _fingerprint(
                parallel_chase(database, tgds, workers=2, limits=limits)
            )
            shuffled = parallel_chase(
                database, tgds, workers=2, limits=limits, exchange="shuffle"
            )
            assert not shuffled.terminated
            assert _fingerprint(shuffled) == expected

    def test_chase_api_passthrough(self):
        database, tgds = random_case(1)
        expected = _fingerprint(chase(database, tgds, limits=LIMITS))
        result = chase(
            database, tgds, limits=LIMITS, workers=2, exchange="shuffle"
        )
        assert _fingerprint(result) == expected

    def test_unknown_exchange_is_rejected(self):
        database, tgds = random_case(0)
        with pytest.raises(ValueError, match="exchange"):
            parallel_chase(database, tgds, workers=2, exchange="gossip")
        assert EXCHANGES == ("coordinator", "shuffle")


class TestCrashMidExchange:
    """A crash between phases must leave a resumable prefix on disk."""

    def _program(self):
        database = parse_database("\n".join(f"edge(n{i}, n{i + 1})." for i in range(6)))
        tgds = parse_rules(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        return database, tgds

    @pytest.mark.parametrize("executor", ("serial", "process"))
    def test_crash_leaves_resumable_sqlite_prefix(self, tmp_path, monkeypatch, executor):
        database, tgds = self._program()
        fresh = chase(database, tgds)
        path = str(tmp_path / f"crash-{executor}.db")
        store = make_backend_store(f"sqlite:{path}")
        monkeypatch.setenv("REPRO_EXCHANGE_CRASH", "1")
        with pytest.raises(RuntimeError, match="injected exchange crash|worker failed"):
            parallel_chase(
                database,
                tgds,
                workers=2,
                executor=executor,
                store=store,
                exchange="shuffle",
            )
        store.close()
        monkeypatch.delenv("REPRO_EXCHANGE_CRASH")
        with SqliteAtomStore(path=path) as reopened:
            persisted = set(map(str, reopened.iter_atoms()))
        # the prefix holds the seed plus round 1, and nothing bogus
        assert persisted > set(map(str, database.atoms()))
        assert persisted <= set(map(str, fresh.instance))
        # resuming over the reopened file reaches the uninterrupted fixpoint
        resumed = chase(database, tgds, store=SqliteAtomStore(path=path))
        assert resumed.terminated
        assert sorted(map(str, resumed.instance)) == sorted(map(str, fresh.instance))
        resumed.store.close()

    def test_targeted_crash_spec_hits_one_worker(self, tmp_path, monkeypatch):
        database, tgds = self._program()
        path = str(tmp_path / "crash-one.db")
        store = make_backend_store(f"sqlite:{path}")
        monkeypatch.setenv("REPRO_EXCHANGE_CRASH", "1:0")
        with pytest.raises(RuntimeError):
            parallel_chase(
                database,
                tgds,
                workers=2,
                executor="serial",
                store=store,
                exchange="shuffle",
            )
        store.close()
        monkeypatch.delenv("REPRO_EXCHANGE_CRASH")
        with SqliteAtomStore(path=path) as reopened:
            assert reopened.atom_count() > len(database)
