"""Tests for the hash-partitioned parallel chase executor.

The property suite (``tests/property/``) sweeps random programs; this file
pins the executor's API surface — worker pools, backends, budgets, error
paths — and the determinism claim on the literature scenarios.
"""

import pytest

from repro.chase.engine import chase
from repro.chase.parallel import (
    EXECUTORS,
    ParallelChaseExecutor,
    parallel_chase,
)
from repro.chase.result import ChaseLimits
from repro.core.instances import Instance
from repro.core.parser import parse_database, parse_rules
from repro.exceptions import ChaseLimitExceeded
from repro.scenarios import build_ibench
from repro.storage.database import RelationalDatabase

from tests.chase.test_differential import random_case
from tests.helpers import chase_result_fingerprint as _fingerprint

LIMITS = ChaseLimits(max_atoms=300, max_rounds=12)


class TestDeterminism:
    @pytest.mark.parametrize("seed", range(6))
    def test_worker_count_never_changes_the_result(self, seed):
        database, tgds = random_case(seed)
        expected = _fingerprint(chase(database, tgds, limits=LIMITS))
        for workers in (1, 2, 3, 4):
            result = parallel_chase(database, tgds, workers=workers, limits=LIMITS)
            assert _fingerprint(result) == expected, f"workers={workers}"

    def test_ibench_scenario_identical_across_pools(self):
        scenario = build_ibench("STB-128", tuples_per_source=3, seed=5)
        database = scenario.store.to_database()
        limits = ChaseLimits(max_atoms=5_000, max_rounds=30)
        expected = _fingerprint(chase(database, scenario.tgds, limits=limits))
        for executor in ("serial", "thread", "process"):
            result = parallel_chase(
                database, scenario.tgds, workers=2, limits=limits, executor=executor
            )
            assert _fingerprint(result) == expected, executor

    def test_process_pool_with_relational_replicas(self):
        database, tgds = random_case(2)
        expected = _fingerprint(chase(database, tgds, limits=LIMITS))
        result = parallel_chase(
            database,
            tgds,
            workers=2,
            limits=LIMITS,
            backend="relational",
            executor="process",
        )
        assert _fingerprint(result) == expected
        assert isinstance(result.store, RelationalDatabase)
        assert result.store.to_instance() == result.instance

    @pytest.mark.parametrize("variant", ("oblivious", "semi-oblivious", "restricted"))
    def test_variants_through_the_delegating_chase_api(self, variant):
        database, tgds = random_case(4)
        expected = _fingerprint(chase(database, tgds, variant=variant, limits=LIMITS))
        result = chase(database, tgds, variant=variant, limits=LIMITS, workers=3)
        assert _fingerprint(result) == expected


class TestBudgets:
    def test_atom_budget_stops_the_run(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> R(y,z)")
        serial = chase(database, tgds, limits=ChaseLimits(max_atoms=10))
        result = parallel_chase(
            database, tgds, workers=2, limits=ChaseLimits(max_atoms=10)
        )
        assert not result.terminated
        assert result.stop_reason == "max_atoms"
        assert _fingerprint(result) == _fingerprint(serial)

    def test_round_budget_stops_the_run(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> R(y,z)")
        serial = chase(database, tgds, limits=ChaseLimits(max_rounds=3))
        result = parallel_chase(
            database, tgds, workers=2, limits=ChaseLimits(max_rounds=3)
        )
        assert not result.terminated
        assert result.stop_reason == "max_rounds"
        assert _fingerprint(result) == _fingerprint(serial)

    def test_on_limit_raise(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> R(y,z)")
        with pytest.raises(ChaseLimitExceeded):
            parallel_chase(
                database,
                tgds,
                workers=2,
                limits=ChaseLimits(max_atoms=10),
                on_limit="raise",
            )

    def test_zero_round_budget(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> R(y,z)")
        result = parallel_chase(
            database, tgds, workers=2, limits=ChaseLimits(max_rounds=0)
        )
        assert result.rounds == 0 and result.stop_reason == "max_rounds"


class TestApiSurface:
    def test_explicit_store_is_used(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> S(y)")
        store = Instance()
        result = parallel_chase(database, tgds, workers=2, store=store)
        assert result.store is store
        assert store.atom_count() == len(result.instance)

    def test_empty_rule_set_reaches_fixpoint_immediately(self):
        database = parse_database("R(a,b).")
        result = parallel_chase(database, parse_rules(""), workers=4)
        assert result.terminated and result.rounds == 0
        assert len(result.instance) == 1

    def test_empty_database(self):
        result = parallel_chase(
            parse_database(""), parse_rules("R(x,y) -> S(y)"), workers=2
        )
        assert result.terminated and len(result.instance) == 0

    def test_validation_errors(self):
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> S(y)")
        with pytest.raises(ValueError):
            parallel_chase(database, tgds, workers=0)
        with pytest.raises(ValueError):
            parallel_chase(database, tgds, executor="bogus")
        with pytest.raises(ValueError):
            parallel_chase(database, tgds, strategy="naive")
        with pytest.raises(ValueError):
            parallel_chase(database, tgds, backend="bogus")
        with pytest.raises(ValueError):
            parallel_chase(database, tgds, variant="bogus")
        with pytest.raises(ValueError):
            ParallelChaseExecutor(on_limit="bogus")
        assert set(EXECUTORS) == {"auto", "serial", "thread", "process"}

    def test_auto_picks_processes_for_relational_stores(self):
        executor = ParallelChaseExecutor(workers=2)
        database = parse_database("R(a,b).")
        tgds = parse_rules("R(x,y) -> S(y)")
        result = executor.run(database, tgds, store=RelationalDatabase(name="t"))
        assert result.terminated
        assert isinstance(result.store, RelationalDatabase)
