"""Unit tests for the chase engines (semi-oblivious, oblivious, restricted)."""

import pytest
from hypothesis import given, settings

from repro.chase.engine import (
    ObliviousChase,
    RestrictedChase,
    SemiObliviousChase,
    chase,
    satisfies,
)
from repro.chase.result import ChaseLimits
from repro.core.parser import parse_database, parse_rules
from repro.exceptions import ChaseLimitExceeded
from tests.helpers import databases, linear_tgd_sets


class TestSemiObliviousChase:
    def test_terminating_chain(self):
        result = chase(parse_database("R(a,b)."), parse_rules("R(x,y) -> S(y,x)"))
        assert result.terminated
        assert len(result.instance) == 2
        assert result.stop_reason == "fixpoint"

    def test_non_terminating_is_cut_by_atom_budget(self):
        result = chase(
            parse_database("R(a,b)."),
            parse_rules("R(x,y) -> R(y,z)"),
            limits=ChaseLimits(max_atoms=30),
        )
        assert not result.terminated
        assert result.stop_reason == "max_atoms"
        assert len(result.instance) > 30

    def test_round_budget(self):
        result = chase(
            parse_database("R(a,b)."),
            parse_rules("R(x,y) -> R(y,z)"),
            limits=ChaseLimits(max_atoms=None, max_rounds=5),
        )
        assert not result.terminated
        assert result.stop_reason == "max_rounds"
        assert result.rounds == 5

    def test_on_limit_raise(self):
        with pytest.raises(ChaseLimitExceeded):
            SemiObliviousChase(limits=ChaseLimits(max_atoms=10), on_limit="raise").run(
                parse_database("R(a,b)."), parse_rules("R(x,y) -> R(y,z)")
            )

    def test_fires_once_per_frontier_witness(self):
        # Two R-atoms share the frontier witness y=b, so only one S-atom is created.
        result = chase(parse_database("R(a,b).\nR(c,b)."), parse_rules("R(x,y) -> S(y,z)"))
        assert result.terminated
        s_atoms = [atom for atom in result.instance if atom.predicate.name == "S"]
        assert len(s_atoms) == 1

    def test_database_is_contained_in_result(self):
        database = parse_database("R(a,b).\nS(b,c).")
        result = chase(database, parse_rules("R(x,y) -> T(y)"))
        assert database.atoms() <= result.instance.atoms()

    def test_result_satisfies_rules_when_terminated(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(x)")
        result = chase(parse_database("R(a,b).\nR(b,c)."), rules)
        assert result.terminated
        assert satisfies(result.instance, rules)

    def test_multi_head_rule(self):
        result = chase(parse_database("R(a,b)."), parse_rules("R(x,y) -> S(y,z), T(z,x)"))
        assert result.terminated
        predicates = {atom.predicate.name for atom in result.instance}
        assert predicates == {"R", "S", "T"}

    def test_multi_body_rule(self):
        rules = parse_rules("R(x,y), S(y,w) -> T(x,w)")
        result = chase(parse_database("R(a,b).\nS(b,c)."), rules)
        assert result.terminated
        assert any(atom.predicate.name == "T" for atom in result.instance)

    def test_empty_rule_set(self):
        database = parse_database("R(a,b).")
        result = chase(database, parse_rules(""))
        assert result.terminated
        assert result.instance.atoms() == database.atoms()


class TestVariantDifferences:
    def test_example_1_1_restricted_vs_semi_oblivious(self, example_1_1):
        database, rules = example_1_1
        restricted = chase(database, rules, variant="restricted")
        assert restricted.terminated
        assert len(restricted.instance) == 1  # D already satisfies the TGD

        semi = chase(database, rules, variant="semi-oblivious", limits=ChaseLimits(max_atoms=40))
        assert not semi.terminated  # builds an infinite chain

    def test_oblivious_is_at_least_as_large_as_semi_oblivious(self):
        database = parse_database("R(a,b).\nR(c,b).")
        rules = parse_rules("R(x,y) -> S(y,z)")
        semi = chase(database, rules, variant="semi-oblivious")
        oblivious = chase(database, rules, variant="oblivious")
        assert semi.terminated and oblivious.terminated
        assert len(oblivious.instance) >= len(semi.instance)
        assert len(oblivious.instance) == 4  # one S-atom per R-atom
        assert len(semi.instance) == 3  # one S-atom per frontier witness

    def test_semi_oblivious_infinite_while_oblivious_also_infinite(self):
        database = parse_database("R(a,b).")
        rules = parse_rules("R(x,y) -> R(y,z)")
        for variant in ("semi-oblivious", "oblivious"):
            result = chase(database, rules, variant=variant, limits=ChaseLimits(max_atoms=25))
            assert not result.terminated

    def test_restricted_smaller_than_semi_oblivious_on_satisfied_heads(self):
        database = parse_database("R(a,b).\nS(b,c).")
        rules = parse_rules("R(x,y) -> S(y,z)")
        restricted = chase(database, rules, variant="restricted")
        semi = chase(database, rules, variant="semi-oblivious")
        assert restricted.terminated and semi.terminated
        assert len(restricted.instance) < len(semi.instance)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            chase(parse_database("R(a,b)."), parse_rules("R(x,y) -> S(y,x)"), variant="standard?")


class TestChaseProperties:
    @given(databases(max_size=4), linear_tgd_sets(simple=True, max_size=3))
    @settings(max_examples=25)
    def test_terminated_chase_satisfies_rules_and_contains_database(self, database, tgds):
        result = chase(database, tgds, limits=ChaseLimits(max_atoms=300, max_rounds=60))
        assert database.atoms() <= result.instance.atoms()
        if result.terminated:
            assert satisfies(result.instance, tgds)

    @given(databases(max_size=4), linear_tgd_sets(simple=True, max_size=3))
    @settings(max_examples=25)
    def test_restricted_never_larger_than_semi_oblivious(self, database, tgds):
        semi = chase(database, tgds, limits=ChaseLimits(max_atoms=300, max_rounds=60))
        restricted = chase(
            database, tgds, variant="restricted", limits=ChaseLimits(max_atoms=300, max_rounds=60)
        )
        if semi.terminated and restricted.terminated:
            assert len(restricted.instance) <= len(semi.instance)
