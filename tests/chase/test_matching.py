"""Unit tests for the indexed matching subsystem (repro.chase.matching)."""

import pytest

from repro.chase.matching import (
    IndexedTriggerSource,
    JoinPlan,
    NaiveTriggerSource,
    has_homomorphism_indexed,
    homomorphisms_indexed,
    make_trigger_source,
)
from repro.core.instances import Instance
from repro.core.parser import parse_database, parse_rules
from repro.core.substitutions import Substitution, homomorphisms
from repro.core.terms import Constant, Variable
from repro.storage.database import RelationalDatabase


def _instance(facts_text):
    return Instance(parse_database(facts_text).atoms())


def _tgd(rules_text):
    return next(iter(parse_rules(rules_text)))


class TestHomomorphismsIndexed:
    def test_matches_naive_enumeration(self):
        tgd = _tgd("R(x,y), S(y,z), R(z,w) -> T(x,w)")
        instance = _instance("R(a,b).\nR(b,c).\nR(c,d).\nS(b,c).\nS(c,a).\nS(d,d).")
        naive = set(homomorphisms(tgd.body, instance))
        indexed = set(homomorphisms_indexed(tgd.body, instance))
        assert naive == indexed
        assert len(indexed) > 0

    def test_base_assignment_is_respected(self):
        tgd = _tgd("R(x,y) -> T(x)")
        instance = _instance("R(a,b).\nR(c,d).")
        base = {Variable("x"): Constant("a")}
        results = list(homomorphisms_indexed(tgd.body, instance, base=base))
        assert len(results) == 1
        assert results[0][Variable("y")] == Constant("b")

    def test_has_homomorphism_indexed(self):
        tgd = _tgd("R(x,y), S(y,z) -> T(x)")
        instance = _instance("R(a,b).\nS(b,c).")
        assert has_homomorphism_indexed(tgd.body, instance)
        assert not has_homomorphism_indexed(
            tgd.body, instance, base={Variable("y"): Constant("c")}
        )

    def test_repeated_variables_prune_via_index(self):
        tgd = _tgd("R(x,x) -> T(x)")
        instance = _instance("R(a,a).\nR(a,b).\nR(b,b).")
        assert len(list(homomorphisms_indexed(tgd.body, instance))) == 2

    def test_works_against_relational_store(self):
        tgd = _tgd("R(x,y), S(y,z) -> T(x,z)")
        store = RelationalDatabase.from_database(parse_database("R(a,b).\nS(b,c).\nS(d,e)."))
        results = list(homomorphisms_indexed(tgd.body, store))
        assert len(results) == 1
        assert results[0][Variable("z")] == Constant("c")


class TestJoinPlan:
    def test_seed_slot_out_of_range(self):
        tgd = _tgd("R(x,y) -> T(x)")
        with pytest.raises(ValueError):
            JoinPlan(tgd.body, 1)

    def test_seed_mismatch_yields_nothing(self):
        tgd = _tgd("R(x,x) -> T(x)")
        plan = JoinPlan(tgd.body, 0)
        instance = _instance("R(a,b).")
        seed = next(iter(instance))
        assert list(plan.matches(instance, seed)) == []

    def test_joins_outward_from_seed(self):
        tgd = _tgd("R(x,y), S(y,z) -> T(x,z)")
        instance = _instance("R(a,b).\nS(b,c).\nS(b,d).")
        seed = next(a for a in instance if a.predicate.name == "R")
        plan = JoinPlan(tgd.body, 0)
        images = {Substitution(m)[Variable("z")] for m in plan.matches(instance, seed)}
        assert images == {Constant("c"), Constant("d")}

    def test_delta_excludes_earlier_slots(self):
        # Body R(x,y), S(y,z): a homomorphism using delta atoms at both slots
        # must only be reported by the plan seeded at the *first* delta slot.
        tgd = _tgd("R(x,y), S(y,z) -> T(x,z)")
        instance = _instance("R(a,b).\nS(b,c).")
        r_atom = next(a for a in instance if a.predicate.name == "R")
        s_atom = next(a for a in instance if a.predicate.name == "S")
        delta = {r_atom, s_atom}
        seeded_at_r = list(JoinPlan(tgd.body, 0).matches(instance, r_atom, delta=delta))
        seeded_at_s = list(JoinPlan(tgd.body, 1).matches(instance, s_atom, delta=delta))
        assert len(seeded_at_r) == 1
        assert seeded_at_s == []  # slot 0 < seed slot may not use a delta atom


class TestTriggerSources:
    def _setup(self):
        tgds = tuple(parse_rules("R(x,y), S(y,z) -> T(x,z)\nT(x,y) -> U(y)"))
        instance = _instance("R(a,b).\nS(b,c).\nS(b,d).")
        return tgds, instance

    def test_initial_agrees_with_naive(self):
        tgds, instance = self._setup()
        naive = {
            (t.tgd_index, t.homomorphism)
            for t in NaiveTriggerSource(tgds).initial(instance)
        }
        indexed = {
            (t.tgd_index, t.homomorphism)
            for t in IndexedTriggerSource(tgds).initial(instance)
        }
        assert naive == indexed

    def test_delta_agrees_with_naive_and_has_no_duplicates(self):
        tgds, instance = self._setup()
        new = set(parse_database("R(e,b).\nS(b,f).").atoms())
        for atom in new:
            instance.add(atom)
        naive = [
            (t.tgd_index, t.homomorphism)
            for t in NaiveTriggerSource(tgds).delta(instance, new)
        ]
        indexed = [
            (t.tgd_index, t.homomorphism)
            for t in IndexedTriggerSource(tgds).delta(instance, new)
        ]
        assert set(naive) == set(indexed)
        assert len(indexed) == len(set(indexed))  # semi-naive dedup: no duplicates

    def test_make_trigger_source(self):
        tgds, _ = self._setup()
        assert isinstance(make_trigger_source(tgds, "indexed"), IndexedTriggerSource)
        assert isinstance(make_trigger_source(tgds, "naive"), NaiveTriggerSource)
        with pytest.raises(ValueError):
            make_trigger_source(tgds, "quantum")
