"""Unit tests for repro.chase.bounds."""

import pytest

from repro.chase.bounds import (
    SizeBound,
    bell_number,
    chase_size_bound,
    static_simplification_size_bound,
)
from repro.chase.engine import chase
from repro.chase.result import ChaseLimits
from repro.core.parser import parse_database, parse_rules
from repro.exceptions import NotLinearError


class TestBellNumbers:
    def test_known_values(self):
        assert [bell_number(n) for n in range(7)] == [1, 1, 2, 5, 15, 52, 203]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bell_number(-1)


class TestStaticSimplificationBound:
    def test_matches_exact_size_on_small_rules(self):
        from repro.simplification.static import static_simplification

        rules = parse_rules("P(x,y,x) -> P(y,z,y)\nR(x,y) -> R(y,z)")
        bound = static_simplification_size_bound(rules)
        assert bound >= len(static_simplification(rules))

    def test_requires_linear(self):
        with pytest.raises(NotLinearError):
            static_simplification_size_bound(parse_rules("R(x,y), S(y,z) -> T(x,z)"))


class TestChaseSizeBound:
    def test_is_an_upper_bound_on_terminating_chases(self):
        database = parse_database("R(a,b).\nR(b,c).")
        rules = parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(x)")
        bound = chase_size_bound(database, rules)
        result = chase(database, rules)
        assert result.terminated
        assert len(result.instance) <= bound.value or bound.saturated

    def test_empty_rule_set(self):
        database = parse_database("R(a,b).")
        bound = chase_size_bound(database, parse_rules(""))
        assert bound.value >= len(database)
        assert not bound.saturated

    def test_saturation_flag(self):
        database = parse_database("R(a,b,c,d,e).")
        rules = parse_rules("R(x,y,z,w,v) -> R(y,z,w,v,u)")
        bound = chase_size_bound(database, rules, cap=1000)
        assert bound.value <= 1000
        assert bound.saturated
        assert not bound.usable_threshold()

    def test_larger_rule_sets_do_not_shrink_the_bound(self):
        database = parse_database("R(a,b).")
        small = chase_size_bound(database, parse_rules("R(x,y) -> S(y,z)"))
        large = chase_size_bound(
            database, parse_rules("R(x,y) -> S(y,z)\nS(x,y) -> T(y,z)\nT(x,y) -> U(y,z)")
        )
        assert large.value >= small.value or large.saturated
