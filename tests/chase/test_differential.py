"""Differential tests: the delta-driven indexed trigger engine vs the naive seed engine.

The indexed engine (``strategy="indexed"``) must be observationally
equivalent to the seed enumeration (``strategy="naive"``) on every chase
variant: same termination verdict, same round count, same number of fired
triggers and created atoms, and — thanks to content-addressed null naming —
the exact same instance, atom for atom.  The suite checks this on the three
literature scenario families (iBench, LUBM, Deep), on randomly generated
multi-atom TGD sets, and across both store backends.
"""

import random

import pytest

from repro.chase.engine import chase
from repro.chase.result import ChaseLimits
from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet
from repro.scenarios import build_deep, build_ibench, build_lubm

VARIANTS = ("oblivious", "semi-oblivious", "restricted")


def assert_engines_agree(database, tgds, limits, variants=VARIANTS):
    """Assert naive and indexed engines produce identical ChaseResults."""
    for variant in variants:
        old = chase(database, tgds, variant=variant, strategy="naive", limits=limits)
        new = chase(database, tgds, variant=variant, strategy="indexed", limits=limits)
        context = f"variant={variant}"
        assert old.terminated == new.terminated, context
        assert old.stop_reason == new.stop_reason, context
        assert old.rounds == new.rounds, context
        assert old.triggers_fired == new.triggers_fired, context
        assert old.atoms_created == new.atoms_created, context
        assert old.instance == new.instance, context


class TestScenarioDifferential:
    def test_ibench_stb(self):
        scenario = build_ibench("STB-128", tuples_per_source=3, seed=5)
        assert_engines_agree(
            scenario.store.to_database(),
            scenario.tgds,
            ChaseLimits(max_atoms=5_000, max_rounds=30),
        )

    def test_ibench_ont(self):
        scenario = build_ibench("ONT-256", tuples_per_source=2, seed=6)
        assert_engines_agree(
            scenario.store.to_database(),
            scenario.tgds,
            ChaseLimits(max_atoms=5_000, max_rounds=30),
        )

    def test_lubm(self):
        scenario = build_lubm("LUBM-1", scale=1.0, seed=7)
        assert_engines_agree(
            scenario.store.to_database(),
            scenario.tgds,
            ChaseLimits(max_atoms=5_000, max_rounds=30),
        )

    def test_deep(self):
        scenario = build_deep("Deep-100", scale=0.05, seed=8)
        assert_engines_agree(
            scenario.store.to_database(),
            scenario.tgds,
            ChaseLimits(max_atoms=1_500, max_rounds=8),
        )


def random_case(seed):
    """Generate a random (database, TGD set) pair with multi-atom bodies/heads."""
    rng = random.Random(seed)
    predicates = [Predicate(f"P{i}", rng.randint(1, 3)) for i in range(5)]
    variables = [Variable(name) for name in "xyzuvw"]
    tgds = TGDSet()
    for _ in range(rng.randint(1, 5)):
        body = []
        for _ in range(rng.randint(1, 3)):
            predicate = rng.choice(predicates)
            body.append(
                Atom(predicate, tuple(rng.choice(variables) for _ in range(predicate.arity)))
            )
        body_variables = sorted({t for atom in body for t in atom.terms}, key=lambda v: v.name)
        head = []
        for _ in range(rng.randint(1, 2)):
            predicate = rng.choice(predicates)
            pool = body_variables + [Variable("e1"), Variable("e2")]
            head.append(Atom(predicate, tuple(rng.choice(pool) for _ in range(predicate.arity))))
        if all(not (set(atom.terms) & set(body_variables)) for atom in head):
            # Keep the frontier non-empty so the rule does something useful.
            head[0] = Atom(
                predicates[0], tuple(body_variables[0] for _ in range(predicates[0].arity))
            )
        tgds.add(TGD(body, head))
    database = Database()
    constants = [Constant(name) for name in "abcd"]
    for _ in range(rng.randint(1, 8)):
        predicate = rng.choice(predicates)
        database.add(
            Atom(predicate, tuple(rng.choice(constants) for _ in range(predicate.arity)))
        )
    return database, tgds


class TestRandomDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_tgd_sets(self, seed):
        database, tgds = random_case(seed)
        assert_engines_agree(database, tgds, ChaseLimits(max_atoms=200, max_rounds=12))


class TestBackendDifferential:
    """The relational backend must chase to the same instance as the in-memory one."""

    @pytest.mark.parametrize("seed", range(10))
    def test_relational_matches_instance_backend(self, seed):
        database, tgds = random_case(seed)
        limits = ChaseLimits(max_atoms=200, max_rounds=12)
        for variant in VARIANTS:
            memory = chase(database, tgds, variant=variant, limits=limits)
            relational = chase(
                database, tgds, variant=variant, limits=limits, backend="relational"
            )
            assert memory.terminated == relational.terminated
            assert memory.atoms_created == relational.atoms_created
            assert memory.triggers_fired == relational.triggers_fired
            assert memory.instance == relational.instance
            # The relational store itself holds the chased atoms (incl. nulls).
            assert relational.store.atom_count() == len(relational.instance)
            assert relational.store.to_instance() == memory.instance

    def test_naive_strategy_on_relational_backend(self):
        database, tgds = random_case(3)
        limits = ChaseLimits(max_atoms=200, max_rounds=12)
        memory = chase(database, tgds, strategy="naive", limits=limits)
        relational = chase(
            database, tgds, strategy="naive", limits=limits, backend="relational"
        )
        assert memory.instance == relational.instance
