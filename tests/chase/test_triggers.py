"""Unit tests for repro.chase.triggers."""

from repro.chase.triggers import Trigger, trigger_count, triggers_on
from repro.core.instances import Instance
from repro.core.parser import parse_database, parse_rules
from repro.core.terms import Constant, NullFactory, Variable


def _single_trigger(rules_text, facts_text):
    rules = parse_rules(rules_text)
    instance = Instance(parse_database(facts_text).atoms())
    triggers = list(triggers_on(tuple(rules), instance))
    assert len(triggers) == 1
    return triggers[0]


class TestTriggerEnumeration:
    def test_counts_one_per_homomorphism(self):
        rules = parse_rules("R(x,y) -> S(y,z)")
        instance = Instance(parse_database("R(a,b).\nR(b,c).").atoms())
        assert trigger_count(rules, instance) == 2

    def test_repeated_body_variable_restricts_matches(self):
        rules = parse_rules("R(x,x) -> S(x,z)")
        instance = Instance(parse_database("R(a,a).\nR(a,b).").atoms())
        assert trigger_count(rules, instance) == 1

    def test_restrict_to_atoms_filters(self):
        rules = parse_rules("R(x,y) -> S(y,z)")
        database = parse_database("R(a,b).\nR(b,c).")
        instance = Instance(database.atoms())
        new_atom = next(iter(parse_database("R(b,c).")))
        restricted = list(triggers_on(tuple(rules), instance, restrict_to_atoms={new_atom}))
        assert len(restricted) == 1
        assert restricted[0].homomorphism[Variable("x")] == Constant("b")

    def test_multi_body_restriction_keeps_joins_touching_new_atoms(self):
        rules = parse_rules("R(x,y), S(y,w) -> T(x,w)")
        instance = Instance(parse_database("R(a,b).\nS(b,c).").atoms())
        new_atom = next(iter(parse_database("S(b,c).")))
        restricted = list(triggers_on(tuple(rules), instance, restrict_to_atoms={new_atom}))
        assert len(restricted) == 1


class TestTriggerResults:
    def test_frontier_variables_are_copied(self):
        trigger = _single_trigger("R(x,y) -> S(y,z)", "R(a,b).")
        atoms = trigger.result(NullFactory())
        assert len(atoms) == 1
        assert atoms[0].terms[0] == Constant("b")
        assert atoms[0].terms[1].name  # a null

    def test_null_is_deterministic_per_trigger_and_variable(self):
        trigger = _single_trigger("R(x,y) -> S(y,z), T(z)", "R(a,b).")
        factory = NullFactory()
        first = trigger.result(factory)
        second = trigger.result(factory)
        assert first == second
        # The same existential variable z is mapped to the same null in both head atoms.
        assert first[0].terms[1] == first[1].terms[0]

    def test_semi_oblivious_key_ignores_non_frontier_variables(self):
        rules = parse_rules("R(x,y) -> S(y,z)")
        instance = Instance(parse_database("R(a,b).\nR(c,b).").atoms())
        triggers = list(triggers_on(tuple(rules), instance))
        keys = {trigger.semi_oblivious_key() for trigger in triggers}
        assert len(triggers) == 2
        assert len(keys) == 1  # same frontier witness y=b

    def test_oblivious_key_distinguishes_full_homomorphisms(self):
        rules = parse_rules("R(x,y) -> S(y,z)")
        instance = Instance(parse_database("R(a,b).\nR(c,b).").atoms())
        triggers = list(triggers_on(tuple(rules), instance))
        keys = {trigger.oblivious_key() for trigger in triggers}
        assert len(keys) == 2

    def test_different_tgd_indices_key_different_nulls(self):
        rules = parse_rules("R(x,y) -> S(y,z)\nT(x,y) -> S(y,z)")
        instance = Instance(parse_database("R(a,b).\nT(a,b).").atoms())
        factory = NullFactory()
        atoms = set()
        for trigger in triggers_on(tuple(rules), instance):
            atoms.update(trigger.result(factory))
        assert len(atoms) == 2  # two distinct nulls, one per TGD
