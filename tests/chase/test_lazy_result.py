"""The lazy ``ChaseResult`` and the out-of-core worker seeding.

Four families:

* **lazy materialization** — a store-backed result builds its in-memory
  instance at most once, only on demand, and ``materialize=False`` keeps
  counts/views working without ever decoding the fixpoint;
* **lazy == eager** — fingerprints agree between ``materialize=True`` and
  ``materialize=False`` runs on every backend, and the view iterates the
  exact sorted atoms of the materialised instance;
* **resume** — an interrupted ``--no-materialize``-style chase into a file
  resumes to the same fixpoint as an uninterrupted eager run;
* **seed streaming** — :func:`repro.chase.parallel.worker_seed_atoms`
  ships partitions for single-atom bodies, whole relations for join
  bodies (plus restricted-chase heads), and nothing for unused predicates,
  with a strictly smaller per-worker pickle than the full store.
"""

import pickle

import pytest

from repro.chase.engine import chase, make_backend_store
from repro.chase.parallel import parallel_chase, replica_seed_split, worker_seed_atoms
from repro.chase.result import ChaseLimits, ChaseResult
from repro.core.atoms import Atom
from repro.core.instances import Instance
from repro.core.parser import parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.terms import Constant
from repro.storage.atom_store import InstanceView
from repro.storage.sqlbackend import SqliteAtomStore

from tests.helpers import chase_result_fingerprint as fingerprint

RULES = "R(x,y) -> S(y,z)\nS(x,y), R(z,x) -> T(z,y)\n"
FACTS = "R(a,b).\nR(b,a).\nR(b,c).\n"

LINEAR_RULES = "R(x,y) -> S(y,z)\nS(x,y) -> T(x,y)\n"


def _program(rules=RULES):
    return parse_database(FACTS), parse_rules(rules)


class TestLazyMaterialization:
    @pytest.mark.parametrize("backend", ["relational", "sqlite"])
    def test_store_backed_result_materializes_at_most_once(self, backend, monkeypatch):
        database, tgds = _program()
        result = chase(database, tgds, backend=backend, materialize=False)
        assert not result.is_materialized
        calls = []
        original = type(result.store).to_instance

        def counting(store):
            calls.append(store)
            return original(store)

        monkeypatch.setattr(type(result.store), "to_instance", counting)
        first = result.instance
        second = result.instance
        assert first is second
        assert first is result.materialize()
        assert calls == [result.store], "instance decoded more than once"
        assert result.is_materialized

    def test_instance_backend_is_already_materialized(self):
        database, tgds = _program()
        result = chase(database, tgds, materialize=False)
        # The in-memory backend *is* the instance: nothing to decode.
        assert result.is_materialized
        assert result.instance is result.store

    def test_counts_and_views_never_materialize(self, monkeypatch):
        database, tgds = _program()
        result = chase(database, tgds, backend="sqlite", materialize=False)
        monkeypatch.setattr(
            SqliteAtomStore,
            "to_instance",
            lambda store: pytest.fail("size()/view must not materialize"),
        )
        assert result.size() == result.store.atom_count()
        assert len(result) == result.size()
        assert len(list(result.iter_atoms())) == result.size()
        view = result.view
        assert isinstance(view, InstanceView)
        assert len(view) == result.size()
        assert not result.is_materialized

    def test_eager_default_materializes_up_front(self):
        database, tgds = _program()
        assert chase(database, tgds, backend="sqlite").is_materialized
        assert parallel_chase(
            database, tgds, workers=2, backend="sqlite", executor="serial"
        ).is_materialized

    def test_result_requires_a_store(self):
        with pytest.raises(ValueError, match="store"):
            ChaseResult(terminated=True)


class TestLazyEqualsEager:
    @pytest.mark.parametrize("backend", ["instance", "relational", "sqlite"])
    def test_fingerprints_agree(self, backend):
        database, tgds = _program()
        eager = chase(database, tgds, backend=backend, materialize=True)
        lazy = chase(database, tgds, backend=backend, materialize=False)
        # The view iterates sorted like Instance, so the comparison holds
        # before any materialization happens...
        assert tuple(sorted(str(atom) for atom in lazy.view)) == tuple(
            sorted(str(atom) for atom in eager.instance)
        )
        # ... and the on-demand instance is byte-identical too.
        assert fingerprint(lazy) == fingerprint(eager)

    def test_view_matches_instance_queries(self):
        database, tgds = _program()
        result = chase(database, tgds, backend="sqlite", materialize=False)
        view = result.view
        instance = result.instance
        assert view.atoms() == instance.atoms()
        assert view.nulls() == instance.nulls()
        assert view.constants() == instance.constants()
        assert view.domain() == instance.domain()
        assert set(view.predicates()) == set(instance.predicates())
        for predicate in view.predicates():
            assert set(view.atoms_with_predicate(predicate)) == set(
                instance.atoms_with_predicate(predicate)
            )
        some_atom = next(iter(instance))
        assert some_atom in view
        assert view.has_atom(some_atom)
        # The store-protocol delegation surface.
        assert view.store is result.store
        predicate = some_atom.predicate
        assert view.predicate_cardinality(predicate) == instance.predicate_cardinality(
            predicate
        )
        bindings = {0: some_atom.terms[0]}
        assert set(view.atoms_matching(predicate, bindings)) == set(
            instance.atoms_matching(predicate, bindings)
        )
        partitioned = set()
        for index in range(2):
            partitioned.update(view.atoms_partition(predicate, (), 2, index))
        assert partitioned == set(instance.atoms_with_predicate(predicate))
        assert view.atom_count() == len(instance)
        assert set(view.iter_atoms()) == set(instance.iter_atoms())
        assert list(view) == sorted(instance)
        assert "InstanceView" in repr(view)

    def test_view_is_read_only(self):
        database, tgds = _program()
        result = chase(database, tgds, backend="sqlite", materialize=False)
        with pytest.raises(TypeError, match="read-only"):
            result.view.add_atom(Atom(Predicate("X", 1), (Constant("a"),)))


class TestLazyResume:
    def test_interrupted_lazy_chase_resumes_to_the_eager_fixpoint(self, tmp_path):
        database, tgds = _program()
        eager = chase(database, tgds)
        expected_atoms = tuple(sorted(str(atom) for atom in eager.instance))

        path = str(tmp_path / "resume.db")
        store = make_backend_store(f"sqlite:{path}")
        first = chase(
            database,
            tgds,
            store=store,
            limits=ChaseLimits(max_rounds=1),
            materialize=False,
        )
        assert not first.terminated and not first.is_materialized
        store.close()

        reopened = make_backend_store(f"sqlite:{path}")
        resumed = chase(database, tgds, store=reopened, materialize=False)
        assert resumed.terminated
        assert not resumed.is_materialized
        # The resumed chase takes fewer rounds (the persisted prefix is
        # already there); the fixpoint itself — null names included — must
        # match the uninterrupted eager run atom for atom, read through the
        # lazy view.
        assert tuple(sorted(str(atom) for atom in resumed.view)) == expected_atoms
        assert resumed.size() == len(eager.instance)
        assert not resumed.is_materialized
        reopened.close()


class TestWorkerSeedStreaming:
    def _store(self, n_rows=40):
        R, U = Predicate("R", 2), Predicate("Unused", 2)
        store = Instance()
        for i in range(n_rows):
            store.add_atom(Atom(R, (Constant(f"a{i}"), Constant(f"b{i}"))))
            store.add_atom(Atom(U, (Constant(f"u{i}"), Constant(f"v{i}"))))
        return store

    def test_linear_rules_partition_the_seed(self):
        store = self._store()
        tgds = tuple(parse_rules(LINEAR_RULES))
        workers = 4
        seeds = [
            worker_seed_atoms(store, tgds, "semi-oblivious", workers, w)
            for w in range(workers)
        ]
        R = Predicate("R", 2)
        all_r = set(store.atoms_with_predicate(R))
        # Disjoint cover of the single-atom-body relation...
        union = set().union(*map(set, seeds))
        assert union == all_r
        assert sum(len(seed) for seed in seeds) == len(all_r)
        # ... and relations no TGD reads are not shipped at all.
        assert not any(
            atom.predicate.name == "Unused" for seed in seeds for atom in seed
        )

    def test_join_bodies_are_fully_replicated(self):
        store = self._store()
        tgds = tuple(parse_rules(RULES))
        full, partitioned = replica_seed_split(tgds, "semi-oblivious")
        names = {predicate.name for predicate in full}
        # R and S are joined by the second rule's two-atom body: every
        # replica needs both relations in full.
        assert names == {"R", "S"}
        assert {predicate.name for predicate in partitioned} == set()
        seeds = [
            worker_seed_atoms(store, tgds, "semi-oblivious", 3, w) for w in range(3)
        ]
        expected = sorted(store.atoms_with_predicate(Predicate("R", 2)))
        assert all(seed == expected for seed in seeds)

    def test_restricted_variant_replicates_head_predicates(self):
        tgds = tuple(parse_rules(LINEAR_RULES))
        full, partitioned = replica_seed_split(tgds, "restricted")
        # The head-satisfaction check probes S and T on the replica.
        assert {predicate.name for predicate in full} == {"S", "T"}
        assert {predicate.name for predicate in partitioned} == {"R"}

    def test_streamed_seed_payload_is_smaller_than_the_full_store_pickle(self):
        store = self._store(n_rows=200)
        tgds = tuple(parse_rules(LINEAR_RULES))
        workers = 4
        full_pickle = len(pickle.dumps(sorted(store.iter_atoms())))
        payloads = [
            len(pickle.dumps(tuple(
                worker_seed_atoms(store, tgds, "semi-oblivious", workers, w)
            )))
            for w in range(workers)
        ]
        assert max(payloads) < full_pickle / 2

    @pytest.mark.parametrize("rules", [RULES, LINEAR_RULES])
    @pytest.mark.parametrize("variant", ["oblivious", "semi-oblivious", "restricted"])
    def test_streamed_process_pool_stays_identical(self, rules, variant):
        database, tgds = _program(rules)
        expected = fingerprint(chase(database, tgds, variant=variant))
        result = parallel_chase(
            database, tgds, variant=variant, workers=3, executor="process"
        )
        assert fingerprint(result) == expected
