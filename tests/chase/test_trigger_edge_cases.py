"""Trigger-engine edge cases, pinned across every strategy/backend combination.

Three families the delta-driven join machinery handles specially:

* **self-joins** — the same predicate occurring twice in one body: the
  semi-naive ordering constraint must still produce every homomorphism
  exactly once when a single delta atom fills both slots;
* **empty frontiers** — ``body`` and ``head`` share no variable: the
  frontier key degenerates to ``()``, so the semi-oblivious chase fires
  such a rule at most once *ever* while the oblivious chase fires it per
  body witness — both pinned here by exact expected instances;
* **single-atom bodies** — the linear fast path, with and without repeated
  body variables (the non-simple matching filter).

Every case runs under every (variant, strategy, backend) combination and
through the parallel executor at several worker counts, and must produce
the identical result everywhere.
"""

import pytest

from repro.chase.engine import chase
from repro.chase.parallel import parallel_chase
from repro.chase.result import ChaseLimits
from repro.core.parser import parse_database, parse_rules

from tests.helpers import chase_result_fingerprint as _fingerprint

VARIANTS = ("oblivious", "semi-oblivious", "restricted")
#: Every valid (strategy, backend) pairing — "sql" compiles the body join
#: into SQLite and exists only on the sqlite backend, where its seq-watermark
#: slot constraints must reproduce these exact pinned semantics;
#: "sql-pushdown" goes further and applies whole set-based rounds (and, for
#: the linear cases here, the recursive-CTE fixpoint tier) inside SQLite.
STRATEGY_BACKEND_COMBOS = (
    ("naive", "instance"),
    ("naive", "relational"),
    ("naive", "sqlite"),
    ("indexed", "instance"),
    ("indexed", "relational"),
    ("indexed", "sqlite"),
    ("sql", "sqlite"),
    ("sql-pushdown", "sqlite"),
)
LIMITS = ChaseLimits(max_atoms=500, max_rounds=20)

#: (name, rules, facts) triples for the differential grid (one fact per line).
EDGE_CASES = (
    (
        "self_join_transitive",
        "R(x,y), R(y,z) -> R(x,z)",
        "R(a,b).\nR(b,c).\nR(c,d).",
    ),
    (
        "self_join_same_delta_atom_in_both_slots",
        "R(x,y), R(y,x) -> S(x,y)\nT(u) -> R(u,u)",
        "T(a).\nT(b).",
    ),
    (
        "self_join_with_existential",
        "R(x,y), R(y,z) -> S(x,w)",
        "R(a,b).\nR(b,c).",
    ),
    (
        "empty_frontier_linear",
        "P(x) -> S(z,z)",
        "P(a).\nP(b).\nP(c).",
    ),
    (
        "empty_frontier_join_body",
        "R(x,y), R(y,z) -> P(w)",
        "R(a,b).\nR(b,c).\nR(b,d).",
    ),
    (
        "single_atom_body_plain",
        "R(x,y) -> S(y,z)\nS(x,y) -> T(x)",
        "R(a,b).\nR(b,b).",
    ),
    (
        "single_atom_body_repeated_variable",
        "R(x,x) -> S(x,z)",
        "R(a,a).\nR(a,b).\nR(b,b).",
    ),
)


def _load(case_name):
    for name, rules, facts in EDGE_CASES:
        if name == case_name:
            return parse_database(facts), parse_rules(rules)
    raise KeyError(case_name)


class TestEdgeCaseGrid:
    @pytest.mark.parametrize("case", [case[0] for case in EDGE_CASES])
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_every_strategy_and_backend_agrees(self, case, variant):
        database, tgds = _load(case)
        reference = chase(
            database, tgds, variant=variant, strategy="naive", limits=LIMITS
        )
        expected = _fingerprint(reference)
        for strategy, backend in STRATEGY_BACKEND_COMBOS:
            result = chase(
                database,
                tgds,
                variant=variant,
                strategy=strategy,
                backend=backend,
                limits=LIMITS,
            )
            assert _fingerprint(result) == expected, (
                f"{case}: {strategy}/{backend} disagrees with the reference"
            )

    @pytest.mark.parametrize("case", [case[0] for case in EDGE_CASES])
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_parallel_executor_agrees(self, case, variant):
        database, tgds = _load(case)
        expected = _fingerprint(
            chase(database, tgds, variant=variant, strategy="naive", limits=LIMITS)
        )
        for workers, executor in ((1, "auto"), (2, "serial"), (4, "thread")):
            result = parallel_chase(
                database,
                tgds,
                variant=variant,
                workers=workers,
                limits=LIMITS,
                executor=executor,
            )
            assert _fingerprint(result) == expected, (
                f"{case}: parallel workers={workers}/{executor} disagrees"
            )

    @pytest.mark.parametrize("case", [case[0] for case in EDGE_CASES])
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_parallel_pushdown_agrees(self, case, variant):
        # The sql-pushdown matching worker: compiled partition-filtered SQL
        # joins must own exactly the same (entry, seed atom) pairs the
        # coordinator would have routed, on these same edge cases.
        database, tgds = _load(case)
        expected = _fingerprint(
            chase(database, tgds, variant=variant, strategy="naive", limits=LIMITS)
        )
        for workers, executor in ((2, "serial"), (3, "thread")):
            result = parallel_chase(
                database,
                tgds,
                variant=variant,
                workers=workers,
                limits=LIMITS,
                backend="sqlite",
                executor=executor,
                strategy="sql-pushdown",
            )
            assert _fingerprint(result) == expected, (
                f"{case}: pushdown workers={workers}/{executor} disagrees"
            )


class TestPinnedSemantics:
    """Exact expected instances for the semantically subtle cases."""

    def test_transitive_closure_completes(self):
        database, tgds = _load("self_join_transitive")
        result = chase(database, tgds, limits=LIMITS)
        assert result.terminated
        atoms = {str(atom) for atom in result.instance}
        assert atoms == {
            "R(a, b)", "R(b, c)", "R(c, d)",
            "R(a, c)", "R(b, d)", "R(a, d)",
        }

    def test_self_join_seeded_by_one_delta_atom(self):
        # T(a) -> R(a,a); the delta atom R(a,a) must fill *both* body slots
        # of the self-join in the next round (classic semi-naive pitfall).
        database, tgds = _load("self_join_same_delta_atom_in_both_slots")
        result = chase(database, tgds, limits=LIMITS)
        assert result.terminated
        atoms = {str(atom) for atom in result.instance}
        assert {"S(a, a)", "S(b, b)"} <= atoms

    def test_empty_frontier_fires_once_semi_obliviously(self):
        database, tgds = _load("empty_frontier_linear")
        result = chase(database, tgds, variant="semi-oblivious", limits=LIMITS)
        # One firing for the empty frontier assignment, hence one null.
        assert result.triggers_fired == 1
        assert result.atoms_created == 1
        assert len(result.instance.nulls()) == 1

    def test_empty_frontier_fires_per_witness_obliviously(self):
        database, tgds = _load("empty_frontier_linear")
        result = chase(database, tgds, variant="oblivious", limits=LIMITS)
        # One firing (and one null) per body homomorphism: P(a), P(b), P(c).
        assert result.triggers_fired == 3
        assert result.atoms_created == 3
        assert len(result.instance.nulls()) == 3

    def test_empty_frontier_restricted_fires_at_most_once(self):
        database, tgds = _load("empty_frontier_linear")
        result = chase(database, tgds, variant="restricted", limits=LIMITS)
        assert result.triggers_fired == 1
        assert result.atoms_created == 1

    def test_repeated_variable_body_only_matches_diagonal(self):
        database, tgds = _load("single_atom_body_repeated_variable")
        result = chase(database, tgds, limits=LIMITS)
        # R(a,b) must not match R(x,x); only R(a,a) and R(b,b) fire.
        assert result.triggers_fired == 2
        assert result.terminated
