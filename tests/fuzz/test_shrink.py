"""Shrinker: minimization preserves interestingness and reduces size."""

from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet
from repro.fuzz import program_size, shrink
from repro.generators import generate_case

P, Q, R = Predicate("P", 1), Predicate("Q", 1), Predicate("R", 2)
x, y = Variable("x"), Variable("y")


def bulky_program():
    tgds = TGDSet(
        [
            TGD((Atom(P, (x,)),), (Atom(Q, (x,)),), label="keep"),
            TGD((Atom(R, (x, y)),), (Atom(P, (x,)), Atom(Q, (y,))), label="chaff1"),
            TGD((Atom(Q, (x,)), Atom(P, (x,))), (Atom(R, (x, x)),), label="chaff2"),
        ]
    )
    database = Database()
    database.add(Atom(P, (Constant("needle%"),)))
    for index in range(5):
        database.add(Atom(R, (Constant(f"pad{index}"), Constant("filler"))))
    return database, tgds


def has_needle(database, tgds) -> bool:
    return any(
        isinstance(term, Constant) and term.name == "needle%"
        for atom in database
        for term in atom.terms
    )


def test_shrink_preserves_predicate_and_reduces_size():
    database, tgds = bulky_program()
    before = program_size(database, tgds)
    small_db, small_tgds = shrink(database, tgds, has_needle)
    assert has_needle(small_db, small_tgds)
    assert program_size(small_db, small_tgds) < before
    # Minimal: one fact carrying the needle, one surviving rule.
    assert len(small_db) == 1
    assert len(small_tgds) == 1


def test_shrink_canonicalizes_irrelevant_constants():
    database, tgds = bulky_program()

    def two_facts(db, rules) -> bool:
        return has_needle(db, rules) and len(db) >= 2

    small_db, _ = shrink(database, tgds, two_facts)
    names = sorted(
        term.name for atom in small_db for term in atom.terms if isinstance(term, Constant)
    )
    # The needle survives verbatim; the padding collapses to canonical names.
    assert "needle%" in names
    assert all(name == "needle%" or name.startswith("c") for name in names)


def test_shrink_round_trips_interesting_adversarial_case():
    """Shrinking with an always-true predicate converges to a tiny program
    that still parses — the 'shrinking round-trip' guard."""
    from repro.core.parser import parse_database, parse_rules
    from repro.core.serializer import serialize_database, serialize_rules

    case = generate_case("guarded", seed=1)
    small_db, small_tgds = shrink(case.database, case.tgds, lambda db, rules: True)
    assert len(small_tgds) == 1
    assert len(small_db) == 1
    assert set(parse_rules(serialize_rules(small_tgds))) == set(small_tgds)
    assert set(parse_database(serialize_database(small_db))) == set(small_db)


def test_shrink_respects_check_budget():
    database, tgds = bulky_program()
    calls = []

    def counting(db, rules) -> bool:
        calls.append(1)
        return has_needle(db, rules)

    shrink(database, tgds, counting, max_checks=5)
    assert len(calls) <= 5


def test_shrink_returns_input_when_nothing_smaller_is_interesting():
    database, tgds = bulky_program()
    frozen = (set(database), set(tgds))

    def exact(db, rules) -> bool:
        return (set(db), set(rules)) == frozen

    small_db, small_tgds = shrink(database, tgds, exact)
    assert (set(small_db), set(small_tgds)) == frozen
