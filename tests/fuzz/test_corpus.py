"""Corpus case format: render/parse round-trips and error reporting."""

import pytest

from repro.exceptions import ParseError
from repro.fuzz import (
    FuzzCase,
    case_from_program,
    load_case,
    load_corpus,
    parse_case,
    render_case,
    save_case,
)
from repro.generators import generate_case


def make_case(**overrides):
    defaults = dict(
        name="example",
        rules_text="P(x) -> Q(x)\n",
        facts_text="P(a).\n",
    )
    defaults.update(overrides)
    return FuzzCase(**defaults)


def test_render_parse_round_trip_plain():
    case = make_case(note="a note")
    back = parse_case(render_case(case))
    assert back == case


def test_render_parse_round_trip_all_headers():
    case = make_case(expect="parse-error", waived="known issue #1", note="why")
    back = parse_case(render_case(case))
    assert back == case


def test_case_from_program_round_trips_generated_families():
    adversarial = generate_case("heavy_skew", seed=4)
    case = case_from_program(adversarial.name, adversarial.database, adversarial.tgds)
    back = parse_case(render_case(case))
    database, tgds = back.program()
    assert set(tgds) == set(adversarial.tgds)
    assert set(database) == set(adversarial.database)


def test_missing_sections_raise_parse_error():
    with pytest.raises(ParseError, match="rules"):
        parse_case("# name: broken\nP(a).\n")


def test_sections_out_of_order_raise_parse_error():
    with pytest.raises(ParseError, match="precedes"):
        parse_case("--- facts ---\nP(a).\n--- rules ---\nP(x) -> Q(x)\n")


def test_unknown_expectation_raises_parse_error():
    text = "# expect: maybe\n--- rules ---\nP(x) -> Q(x)\n--- facts ---\nP(a).\n"
    with pytest.raises(ParseError, match="expect"):
        parse_case(text)


def test_save_and_load_corpus(tmp_path):
    first = make_case(name="b-case")
    second = make_case(name="a-case", waived="deferred: demo")
    save_case(first, tmp_path)
    save_case(second, tmp_path)
    cases = load_corpus(tmp_path)
    assert [case.name for case in cases] == ["a-case", "b-case"]
    assert cases[0].waived == "deferred: demo"
    assert all(case.path is not None for case in cases)


def test_save_sanitizes_file_names(tmp_path):
    case = make_case(name="weird/name case")
    path = save_case(case, tmp_path)
    assert path.name == "weird-name-case.case"
    assert load_case(path).name == "weird/name case"


def test_load_missing_corpus_directory_raises(tmp_path):
    with pytest.raises(ParseError, match="does not exist"):
        load_corpus(tmp_path / "nope")


def test_load_missing_case_file_raises(tmp_path):
    with pytest.raises(ParseError, match="cannot read"):
        load_case(tmp_path / "missing.case")


def test_parse_error_case_program_raises():
    case = make_case(facts_text='P("").\n', expect="parse-error")
    with pytest.raises(ParseError):
        case.program()
