"""Mutation operators: determinism, validity, and registry coverage."""

import random

import pytest

from repro.core.parser import parse_database, parse_rules
from repro.core.serializer import serialize_database, serialize_rules
from repro.fuzz import OPERATOR_NAMES, MutationFailed, mutate, mutate_many
from repro.fuzz.mutate import _OPERATORS
from repro.generators import generate_case


def program_for(family="sticky", seed=0):
    case = generate_case(family, seed=seed)
    return case.database, case.tgds


def test_registry_is_sorted_and_non_trivial():
    assert OPERATOR_NAMES == tuple(sorted(OPERATOR_NAMES))
    assert len(OPERATOR_NAMES) >= 10


def test_mutate_is_deterministic_under_seeded_rng():
    database, tgds = program_for()
    first, name_a = mutate(random.Random("m"), database, tgds)
    second, name_b = mutate(random.Random("m"), database, tgds)
    assert name_a == name_b
    assert first[1] == second[1]
    assert set(first[0]) == set(second[0])


def test_mutate_does_not_modify_the_input_program():
    database, tgds = program_for()
    before_facts = set(database)
    before_rules = set(tgds)
    for attempt in range(10):
        mutate(random.Random(attempt), database, tgds)
    assert set(database) == before_facts
    assert set(tgds) == before_rules


@pytest.mark.parametrize("name", sorted(_OPERATORS))
def test_each_operator_output_round_trips(name):
    """Whenever an operator applies, its output is a valid, parseable program."""
    operator = _OPERATORS[name]
    applied = 0
    for family in ("sticky", "self_join", "guarded", "null_churn"):
        database, tgds = program_for(family)
        for attempt in range(20):
            rng = random.Random(f"{name}:{family}:{attempt}")
            try:
                mutated_db, mutated_tgds = operator(rng, database, tgds)
            except MutationFailed:
                continue
            applied += 1
            assert set(parse_rules(serialize_rules(mutated_tgds))) == set(mutated_tgds)
            assert set(parse_database(serialize_database(mutated_db))) == set(mutated_db)
            break
    assert applied, f"operator {name} never applied to any family"


def test_mutate_many_stacks_operators():
    database, tgds = program_for("guarded")
    (mutated_db, mutated_tgds), applied = mutate_many(
        random.Random("stack"), database, tgds, count=3
    )
    assert 1 <= len(applied) <= 3
    assert all(name in OPERATOR_NAMES for name in applied)
    changed = set(mutated_db) != set(database) or set(mutated_tgds) != set(tgds)
    assert changed


def test_mutate_many_raises_when_nothing_applies():
    from repro.core.instances import Database
    from repro.core.tgds import TGDSet

    with pytest.raises(MutationFailed):
        mutate_many(random.Random(0), Database(), TGDSet(), count=2)


class TestEmptyFrontierRules:
    """Regression: add-body-atom crashed with IndexError on rules like
    ``G() -> Q(z)`` (legal empty-frontier TGDs with zero body variables),
    reachable by drop-body-atom on a gated rule.  Found by fuzzing the
    nullary-gate corpus seed."""

    def _bodiless_program(self):
        tgds = parse_rules("G() -> Q(z)")
        database = parse_database("G().")
        return database, tgds

    def test_add_body_atom_never_raises_index_error(self):
        from repro.fuzz.mutate import _add_body_atom

        database, tgds = self._bodiless_program()
        for attempt in range(30):
            rng = random.Random(f"bodiless:{attempt}")
            try:
                _, mutated_tgds = _add_body_atom(rng, database, tgds)
            except MutationFailed:
                continue
            # Only nullary atoms can join a variable-free body.
            for rule in mutated_tgds:
                for atom in rule.body:
                    assert atom.predicate.arity == 0 or rule.body_variables()

    def test_mutation_chain_from_nullary_gate_seed_survives(self):
        # The exact failure path: gate a rule, drop the variable-bearing
        # body atom, then keep mutating — must never escape MutationFailed.
        database = parse_database("G().\nP(a).")
        tgds = parse_rules("G(), P(x) -> Q(x)\nQ(x) -> R(x,y)")
        rng = random.Random("chain")
        for _ in range(300):
            try:
                (database2, tgds2), _applied = mutate_many(
                    rng, database, tgds, count=rng.randint(1, 3)
                )
            except MutationFailed:
                continue
            database, tgds = database2, tgds2
