"""Oracle battery: clean programs pass, doctored results are flagged."""

import pytest

from repro.chase.result import ChaseLimits, ChaseResult
from repro.core.atoms import Atom
from repro.core.instances import Database, Instance
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet
from repro.fuzz import (
    DEFAULT_LIMITS,
    check_budget_accounting,
    check_engine_identity,
    check_round_trip,
    check_termination_oracle,
    run_all_oracles,
)
from repro.generators import FAMILY_NAMES, generate_case

P, Q, R = Predicate("P", 1), Predicate("Q", 1), Predicate("R", 2)
x, y = Variable("x"), Variable("y")


def simple_program():
    tgds = TGDSet([TGD((Atom(P, (x,)),), (Atom(Q, (x,)),))])
    database = Database()
    database.add(Atom(P, (Constant("a"),)))
    return database, tgds


def test_clean_program_has_no_divergences():
    database, tgds = simple_program()
    assert run_all_oracles(database, tgds, pools="quick") == []


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_adversarial_families_replay_clean(family):
    """The acceptance bar: every family passes the battery at head."""
    case = generate_case(family, seed=0)
    divergences = run_all_oracles(case.database, case.tgds, pools="quick")
    assert divergences == [], [str(d) for d in divergences]


def test_round_trip_oracle_passes_on_gnarly_constants():
    database, tgds = simple_program()
    database.add(Atom(P, (Constant("100%"),)))
    database.add(Atom(P, (Constant('qu"ote'),)))
    assert check_round_trip(database, tgds) == []


def test_budget_accounting_flags_inconsistent_size():
    instance = Instance([Atom(P, (Constant("a"),))])
    result = ChaseResult(
        terminated=True, rounds=1, atoms_created=5, triggers_fired=1, store=instance
    )
    flagged = check_budget_accounting(result, seed_atoms=1, limits=DEFAULT_LIMITS, subject="t")
    assert any("atoms_created" in d.detail for d in flagged)


def test_budget_accounting_flags_bad_stop_reason():
    instance = Instance([Atom(P, (Constant("a"),))])
    result = ChaseResult(
        terminated=False, rounds=1, stop_reason="gave-up", store=instance
    )
    flagged = check_budget_accounting(result, seed_atoms=1, limits=DEFAULT_LIMITS, subject="t")
    assert any("undocumented stop_reason" in d.detail for d in flagged)


def test_budget_accounting_flags_terminated_mismatch():
    instance = Instance([Atom(P, (Constant("a"),))])
    result = ChaseResult(
        terminated=False, rounds=1, stop_reason="fixpoint", store=instance
    )
    flagged = check_budget_accounting(result, seed_atoms=1, limits=DEFAULT_LIMITS, subject="t")
    assert any("inconsistent" in d.detail for d in flagged)


def test_budget_accounting_flags_budgetless_stop():
    instance = Instance([Atom(P, (Constant("a"),))])
    result = ChaseResult(
        terminated=False, rounds=1, stop_reason="max_atoms", store=instance
    )
    no_budget = ChaseLimits(max_atoms=None, max_rounds=None)
    flagged = check_budget_accounting(result, seed_atoms=1, limits=no_budget, subject="t")
    assert any("no atom budget" in d.detail for d in flagged)


def test_clean_result_passes_budget_accounting():
    instance = Instance([Atom(P, (Constant("a"),)), Atom(Q, (Constant("a"),))])
    result = ChaseResult(
        terminated=True, rounds=2, atoms_created=1, triggers_fired=1, store=instance
    )
    assert check_budget_accounting(result, seed_atoms=1, limits=DEFAULT_LIMITS, subject="t") == []


def test_engine_identity_covers_non_terminating_prefixes():
    """An infinite chase under a small budget still compares byte-identically."""
    case = generate_case("termination_boundary", seed=0)
    limits = ChaseLimits(max_atoms=60, max_rounds=6)
    assert check_engine_identity(case.database, case.tgds, limits=limits, pools="quick") == []


def test_termination_oracle_skips_non_linear_rules():
    tgds = TGDSet([TGD((Atom(P, (x,)), Atom(Q, (x,))), (Atom(R, (x, x)),))])
    database = Database()
    database.add(Atom(P, (Constant("a"),)))
    assert not tgds.is_linear()
    assert check_termination_oracle(database, tgds) == []


def test_termination_oracle_runs_on_linear_rules():
    database, tgds = simple_program()
    assert tgds.is_linear()
    assert check_termination_oracle(database, tgds) == []
