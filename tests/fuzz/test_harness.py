"""The fuzzing loop and corpus replay, including reverted-fix detection."""

import pytest

from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet
from repro.exceptions import ParseError
from repro.fuzz import (
    FuzzCase,
    case_from_program,
    fuzz,
    replay_case,
    replay_corpus,
    save_case,
)

P, Q = Predicate("P", 1), Predicate("Q", 1)
x = Variable("x")


def simple_case(name="simple", **overrides):
    fields = dict(
        name=name,
        rules_text="P(x) -> Q(x)\n",
        facts_text='P(a).\nP("100%").\n',
    )
    fields.update(overrides)
    return FuzzCase(**fields)


class TestReplayCase:
    def test_conform_case_replays_green(self):
        assert replay_case(simple_case(), pools="quick").status == "ok"

    def test_waived_case_is_skipped(self):
        outcome = replay_case(simple_case(waived="deferred: demo"), pools="quick")
        assert outcome.status == "waived"
        assert outcome.divergences == ()

    def test_parse_error_expectation_green_when_it_fails_to_parse(self):
        case = simple_case(facts_text='P("").\n', expect="parse-error")
        assert replay_case(case, pools="quick").status == "ok"

    def test_parse_error_expectation_diverges_when_it_parses(self):
        case = simple_case(expect="parse-error")
        outcome = replay_case(case, pools="quick")
        assert outcome.status == "divergent"
        assert "expected ParseError" in outcome.divergences[0].detail

    def test_conform_case_that_fails_to_parse_diverges(self):
        case = simple_case(rules_text="P(x) ->\n")
        outcome = replay_case(case, pools="quick")
        assert outcome.status == "divergent"
        assert "failed to parse" in outcome.divergences[0].detail


class TestReplayCorpus:
    def test_replay_reports_per_case(self, tmp_path):
        save_case(simple_case("good"), tmp_path)
        save_case(simple_case("skipped", waived="deferred: demo"), tmp_path)
        lines = []
        report = replay_corpus(tmp_path, pools="quick", log=lines.append)
        assert report.ok
        assert report.cases_run == 1
        assert [case.name for case in report.waived] == ["skipped"]
        assert any(line.startswith("ok") for line in lines)
        assert any(line.startswith("waived") for line in lines)

    def test_replay_missing_directory_raises(self, tmp_path):
        with pytest.raises(ParseError):
            replay_corpus(tmp_path / "nope")


class TestFuzzLoop:
    def test_fixed_seed_runs_are_identical(self):
        signature = lambda r: (
            r.cases_run,
            r.seeds_loaded,
            [c.case.name for c in r.divergent],
            r.coverage_edges,
        )
        first = fuzz(max_cases=4, seed=11, families=["self_join"])
        second = fuzz(max_cases=4, seed=11, families=["self_join"])
        assert signature(first) == signature(second)

    def test_clean_tree_finds_nothing(self):
        report = fuzz(max_cases=4, seed=2, families=["sticky", "nullary_gate"])
        assert report.ok, report.summary()
        assert report.coverage_edges > 0
        assert report.cases_run >= report.seeds_loaded

    def test_unknown_family_raises(self):
        with pytest.raises(ParseError, match="unknown adversarial families"):
            fuzz(max_cases=1, families=["nope"])

    def test_corpus_seeds_feed_the_pool(self, tmp_path):
        save_case(simple_case("seeded"), tmp_path)
        report = fuzz(max_cases=2, seed=0, families=["sticky"], corpus_dir=tmp_path)
        assert report.seeds_loaded == 2  # corpus case + one adversarial family

    def test_divergences_are_saved_as_minimized_cases(self, tmp_path, monkeypatch):
        """Reverting the quote-aware comment stripping (a this-PR bugfix)
        must make the fuzzer find, shrink, and persist a divergence."""
        import repro.core.parser as parser_mod

        def legacy_strip(line):
            for prefix in ("%", "#", "//"):
                at = line.find(prefix)
                if at != -1:
                    line = line[:at]
            return line

        monkeypatch.setattr(parser_mod, "_strip_comment", legacy_strip)
        save_dir = tmp_path / "found"
        report = fuzz(
            max_cases=0, seed=0, families=["heavy_skew"], save_dir=save_dir
        )
        assert not report.ok
        assert report.divergent
        # Seed-phase divergences are reported; search-phase ones are saved.
        assert any(
            "round-trip" in d.oracle
            for outcome in report.divergent
            for d in outcome.divergences
        )

    def test_reverted_fix_breaks_corpus_replay(self, tmp_path, monkeypatch):
        """The committed-corpus acceptance check, in miniature."""
        import repro.core.parser as parser_mod

        tgds = TGDSet([TGD((Atom(P, (x,)),), (Atom(Q, (x,)),))])
        database = Database()
        database.add(Atom(P, (Constant("100%"),)))
        save_case(case_from_program("percent", database, tgds), tmp_path)

        assert replay_corpus(tmp_path, pools="quick").ok

        def legacy_strip(line):
            for prefix in ("%", "#", "//"):
                at = line.find(prefix)
                if at != -1:
                    line = line[:at]
            return line

        monkeypatch.setattr(parser_mod, "_strip_comment", legacy_strip)
        report = replay_corpus(tmp_path, pools="quick")
        assert not report.ok
        assert report.divergent

    def test_time_budget_only_bounds_iterations(self):
        report = fuzz(time_budget=0.0, seed=0, families=["sticky"])
        # Deadline expires immediately: at most the first seed replays.
        assert report.cases_run <= 1
        assert not report.interrupted
