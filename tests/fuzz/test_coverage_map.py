"""Coverage probes: edges are collected, scoped, and version-portable."""

import sys

from repro.chase.engine import chase
from repro.chase.result import ChaseLimits
from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.predicates import Predicate
from repro.core.terms import Constant, Variable
from repro.core.tgds import TGD, TGDSet
from repro.fuzz import trace_probe
from repro.fuzz.coverage_map import _trace_with_settrace

P, Q = Predicate("P", 1), Predicate("Q", 1)
x = Variable("x")


def run_small_chase():
    tgds = TGDSet([TGD((Atom(P, (x,)),), (Atom(Q, (x,)),))])
    database = Database()
    database.add(Atom(P, (Constant("a"),)))
    chase(database, tgds, limits=ChaseLimits(max_atoms=50, max_rounds=5))


def test_probe_collects_chase_edges():
    edges = trace_probe(run_small_chase)
    assert edges, "a chase run must cover some engine lines"
    assert all(isinstance(f, str) and isinstance(n, int) for f, n in edges)
    assert any("chase" in filename for filename, _ in edges)


def test_probe_respects_scope():
    edges = trace_probe(run_small_chase, scope=("no-such-path-fragment",))
    assert edges == frozenset()


def test_probe_is_deterministic():
    assert trace_probe(run_small_chase) == trace_probe(run_small_chase)


def test_settrace_fallback_matches_primary_path():
    primary = trace_probe(run_small_chase)
    fallback = _trace_with_settrace(run_small_chase, ("repro",))
    # The fallback's scope is wider here; it must at least see what the
    # default-scoped primary probe saw.
    assert primary <= fallback


def test_probe_unwinds_tracing_on_exception():
    def boom():
        raise RuntimeError("probe body failed")

    before = sys.gettrace()
    try:
        trace_probe(boom)
    except RuntimeError:
        pass
    assert sys.gettrace() is before
