"""Tests for the exception hierarchy and the top-level public API surface."""

import pytest

import repro
from repro.exceptions import (
    ChaseLimitExceeded,
    ExperimentConfigError,
    NotLinearError,
    NotSimpleLinearError,
    ParseError,
    ReproError,
    StorageError,
    UnknownRelationError,
    ValidationError,
)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_class in (
            ParseError,
            ValidationError,
            NotLinearError,
            NotSimpleLinearError,
            StorageError,
            UnknownRelationError,
            ChaseLimitExceeded,
            ExperimentConfigError,
        ):
            assert issubclass(error_class, ReproError)

    def test_class_specific_subtyping(self):
        assert issubclass(NotLinearError, ValidationError)
        assert issubclass(NotSimpleLinearError, ValidationError)
        assert issubclass(UnknownRelationError, StorageError)

    def test_parse_error_carries_location(self):
        error = ParseError("bad atom", line_number=7, line="R(x")
        assert "line 7" in str(error)
        assert error.line == "R(x"

    def test_chase_limit_carries_counters(self):
        error = ChaseLimitExceeded("too big", atoms_created=10, rounds=3)
        assert error.atoms_created == 10
        assert error.rounds == 3

    def test_catching_the_base_class(self):
        with pytest.raises(ReproError):
            repro.parse_rules("not a rule")


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_example_is_accurate(self):
        rules = repro.parse_rules("R(x,y) -> R(y,z)")
        database = repro.parse_database("R(a,b).")
        assert bool(repro.is_chase_finite_sl(database, rules)) is False

    def test_subpackages_are_importable(self):
        import repro.chase
        import repro.core
        import repro.experiments
        import repro.generators
        import repro.graph
        import repro.scenarios
        import repro.simplification
        import repro.storage
        import repro.termination

        assert repro.chase and repro.core and repro.experiments
        assert repro.generators and repro.graph and repro.scenarios
        assert repro.simplification and repro.storage and repro.termination
