"""Minimized regressions for the parser/serializer bugs the fuzzer surfaced.

Each test class pins one bug fixed in the fuzzing PR, reduced to the
smallest input that distinguishes the fixed behaviour from the old one.
The corresponding corpus cases (``tests/regressions/corpus/``) run the same
inputs through the full cross-engine oracle battery; these tests assert the
precise component-level contract so a failure points straight at the layer
that regressed.
"""

import pytest

from repro.core.atoms import Atom
from repro.core.instances import Database
from repro.core.parser import _strip_comment, parse_atom, parse_database, parse_rules
from repro.core.predicates import Predicate
from repro.core.serializer import serialize_atom, serialize_database
from repro.core.terms import Constant
from repro.exceptions import ParseError, ValidationError

P = Predicate("P", 1)


def one_fact_database(name):
    """A database holding the single fact ``P(<name>)``."""
    return Database([Atom(P, (Constant(name),))])


class TestQuoteAwareCommentStripping:
    """Bug: ``_strip_comment`` cut quoted constants at %, #, or //."""

    def test_percent_inside_quotes_is_content(self):
        assert _strip_comment('R("100%",b).') == 'R("100%",b).'

    def test_hash_and_slashes_inside_quotes_are_content(self):
        assert _strip_comment('R("x#y","p//q").') == 'R("x#y","p//q").'

    def test_comment_after_quoted_constant_is_still_stripped(self):
        assert _strip_comment('R("100%",b). % trailing') == 'R("100%",b). '

    def test_single_quotes_guard_too(self):
        assert _strip_comment("R('a%b').") == "R('a%b')."

    def test_unterminated_quote_keeps_the_rest_of_the_line(self):
        # The atom parser owns the error message for a dangling quote; the
        # stripper must not silently amputate the evidence.
        assert _strip_comment('R("dangling % rest') == 'R("dangling % rest'

    def test_end_to_end_percent_constant_parses(self):
        database = parse_database('R("100%",b).')
        (atom,) = database
        assert atom.terms[0] == Constant("100%")


class TestDoubledQuoteEscaping:
    """Bug: quote characters in constant names broke the round-trip."""

    def test_doubled_double_quote_parses(self):
        atom = parse_atom('P("qu""ote")', as_variable=False)
        assert atom.terms[0] == Constant('qu"ote')

    def test_doubled_single_quote_parses(self):
        atom = parse_atom("P('qu''ote')", as_variable=False)
        assert atom.terms[0] == Constant("qu'ote")

    def test_serializer_emits_doubled_quotes(self):
        atom = parse_atom('P("qu""ote")', as_variable=False)
        assert serialize_atom(atom, in_rule=False) == 'P("qu""ote")'

    @pytest.mark.parametrize(
        "name", ['qu"ote', "qu'ote", '""', 'a""b', "it's a \"test\""]
    )
    def test_quote_bearing_names_round_trip(self, name):
        database = one_fact_database(name)
        assert set(parse_database(serialize_database(database))) == set(database)


class TestQuoteForcingCharacters:
    """Bug: ``a//b`` serialized unquoted, then got truncated to ``a``."""

    @pytest.mark.parametrize("name", ["a//b", "a/b", "a%b", "x#y", "a b", "a\tb"])
    def test_comment_prefixes_and_whitespace_force_quoting(self, name):
        database = one_fact_database(name)
        assert set(parse_database(serialize_database(database))) == set(database)

    def test_unprintable_characters_force_quoting(self):
        rendered = serialize_database(one_fact_database("a\x01b"))
        assert rendered.strip().startswith('P("')


class TestInvalidTermsAreParseErrors:
    """Bug: the empty quoted constant escaped as a raw TypeError."""

    def test_empty_quoted_constant_is_a_parse_error(self):
        with pytest.raises(ParseError, match="invalid term"):
            parse_database('P("").')

    def test_rules_report_invalid_terms_the_same_way(self):
        with pytest.raises(ParseError):
            parse_rules('P(x) -> Q(x)\nP("") -> Q(x)')

    def test_line_break_constants_are_rejected_at_serialization(self):
        # The line-based format cannot represent them; mangling silently
        # would break the round-trip contract, so the serializer refuses.
        with pytest.raises(ValidationError, match="line break"):
            serialize_database(one_fact_database("a\nb"))
