"""Minimized regression for the CLI input-error contract (fuzzing PR).

Bug: ``repro-experiments check``/``chase`` leaked raw tracebacks when the
rule or fact file was missing or malformed.  The documented contract (see
``docs/cli.md``) is exit code 2 with a one-line message on stderr, never a
traceback — pinned here with the smallest failing inputs.
"""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("P(x) -> Q(x)\n")
    return path


def assert_one_line_error(code, err):
    assert code == 2
    assert "Traceback" not in err
    assert err.strip()
    assert len(err.strip().splitlines()) == 1


def test_check_missing_rule_file_is_a_one_line_error(capsys, tmp_path):
    code, _, err = run_cli(capsys, "check", "--rules", str(tmp_path / "absent.txt"))
    assert_one_line_error(code, err)


def test_check_malformed_rules_are_a_one_line_error(capsys, tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("this is not a rule\n")
    code, _, err = run_cli(capsys, "check", "--rules", str(path))
    assert_one_line_error(code, err)


def test_chase_malformed_facts_are_a_one_line_error(capsys, rules_file, tmp_path):
    facts = tmp_path / "facts.txt"
    facts.write_text('P("").\n')  # the empty constant from the fuzz corpus
    code, _, err = run_cli(capsys, "chase", "--rules", str(rules_file), "--facts", str(facts))
    assert_one_line_error(code, err)
    assert "invalid term" in err
