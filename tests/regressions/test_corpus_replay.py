"""Replay the committed fuzz corpus inside pytest.

Every ``*.case`` file under ``tests/regressions/corpus/`` pins a bug the
differential fuzzer found (or an adversarial shape worth keeping hot): the
full oracle battery must stay green on each of them, forever.  Corpus cases
double as regression tests this way — ``repro-experiments fuzz --replay``
runs the same battery from the command line and in CI.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_case, load_corpus, replay_case, replay_corpus

CORPUS = Path(__file__).parent / "corpus"

CASE_PATHS = sorted(CORPUS.glob("*.case"))


def test_corpus_is_not_empty():
    assert len(CASE_PATHS) >= 8


@pytest.mark.parametrize("path", CASE_PATHS, ids=lambda path: path.stem)
def test_case_replays_green(path):
    outcome = replay_case(load_case(path), pools="quick")
    details = "\n".join(str(d) for d in outcome.divergences)
    assert outcome.status in ("ok", "waived"), f"{path.name} diverged:\n{details}"


def test_whole_corpus_replay_report_is_clean():
    report = replay_corpus(CORPUS, pools="quick")
    assert report.ok, report.summary()
    assert report.cases_run == len(CASE_PATHS) - len(report.waived)


def test_every_case_has_a_note():
    # A corpus entry without a note is an unexplained pin — future readers
    # need to know what bug the case holds down.
    for case in load_corpus(CORPUS):
        assert case.note, f"{case.name} is missing a '# note:' header"


def test_waived_cases_carry_justifications():
    # The corpus currently has no waivers (every divergence found by the
    # fuzzer was fixed in-tree); if one is ever added, its justification
    # must be non-empty, mirroring the reprolint waiver policy.
    for case in load_corpus(CORPUS):
        if case.waived is not None:
            assert case.waived.strip(), f"{case.name} has an empty waiver"
