"""End-to-end integration tests across parsing, storage, simplification, and checking."""

from repro import (
    ChaseLimits,
    InDatabaseShapeFinder,
    InMemoryShapeFinder,
    RelationalDatabase,
    chase,
    induced_database,
    is_chase_finite_l,
    is_chase_finite_sl,
    parse_database,
    parse_rules,
)
from repro.core.parser import load_database, load_rules
from repro.core.serializer import dump_database, dump_rules
from repro.generators import generate_database, generate_tgds, make_schema
from repro.scenarios import build_scenario


class TestFileToVerdictPipeline:
    def test_round_trip_through_files_and_checkers(self, tmp_path):
        # Every employee's department gets a manager, and every manager is an
        # employee of some (fresh) department: the chase never stops.
        rules = parse_rules("Emp(e,d) -> Dept(d,m)\nDept(d,m) -> Emp(m,d2)")
        database = parse_database("Emp(alice,cs).")
        rule_path = tmp_path / "rules.txt"
        fact_path = tmp_path / "facts.txt"
        dump_rules(rules, rule_path)
        dump_database(database, fact_path)

        loaded_rules = load_rules(rule_path)
        loaded_facts = load_database(fact_path)
        report = is_chase_finite_sl(loaded_facts, loaded_rules)
        # Dept introduces a manager null which becomes a new Emp, whose Dept
        # introduces another manager, and so on: the chase is infinite.
        assert not report.finite
        result = chase(loaded_facts, loaded_rules, limits=ChaseLimits(max_atoms=50))
        assert not result.terminated

    def test_storage_backed_check_agrees_with_core_check(self):
        rules = parse_rules("R(x,x) -> S(x,z)\nS(x,y) -> R(y,y)")
        database = parse_database("R(a,a).\nR(a,b).")
        direct = is_chase_finite_l(database, rules)
        store = RelationalDatabase.from_database(database)
        via_memory = is_chase_finite_l(InMemoryShapeFinder(store), rules)
        via_database = is_chase_finite_l(InDatabaseShapeFinder(store), rules)
        assert direct.finite == via_memory.finite == via_database.finite is False

    def test_generated_workload_end_to_end(self):
        schema = make_schema(30, seed=3)
        rules = generate_tgds(schema, ssize=15, min_arity=1, max_arity=4, tsize=150, tclass="L", seed=4)
        store = generate_database(preds=15, min_arity=1, max_arity=4, dsize=100, rsize=40, seed=5, schema=schema)
        report = is_chase_finite_l(InMemoryShapeFinder(store), rules)
        assert isinstance(report.finite, bool)
        assert report.timings.t_shapes > 0
        assert report.statistics["n_simplified_rules"] >= 0

    def test_scenario_end_to_end(self):
        scenario = build_scenario("LUBM-1")
        report = is_chase_finite_l(InMemoryShapeFinder(scenario.store), scenario.tgds)
        assert report.finite
        # The LUBM rules are simple-linear, so the SL checker must agree.
        sl_report = is_chase_finite_sl(scenario.store.to_database(), scenario.tgds)
        assert sl_report.finite

    def test_induced_database_makes_every_special_scc_supported(self):
        rules = parse_rules("A(x,y) -> B(y,z)\nB(x,y) -> A(y,z)\nC(x) -> D(x)")
        database = induced_database(rules)
        assert not is_chase_finite_sl(database, rules).finite
        # Verify against the engine: the chase really does not terminate.
        result = chase(database, rules, limits=ChaseLimits(max_atoms=100))
        assert not result.terminated

    def test_finite_scenario_chase_materializes_and_satisfies(self):
        rules = parse_rules(
            """
            Person(p) -> HasName(p,n)
            Student(s) -> Person(s)
            HasName(p,n) -> Name(n)
            """
        )
        database = parse_database("Student(alice).\nPerson(bob).")
        report = is_chase_finite_sl(database, rules)
        assert report.finite
        result = chase(database, rules)
        assert result.terminated
        from repro.chase import satisfies

        assert satisfies(result.instance, rules)
        # Student(alice), Person(alice), Person(bob), two HasName atoms, two Name atoms.
        assert len(result.instance) == 7
