"""A miniature version of the paper's scalability study (Figures 1, 2, and 5).

Generates simple-linear and linear workloads with the same generators used
by the full benchmark harness, runs the termination checkers, and prints the
aggregated series: runtime vs number of rules (Figures 1 and 5) and number
of shapes vs database size (Figure 2).

Run with::

    python examples/scalability_study.py            # quick (smoke scale)
    python examples/scalability_study.py --default  # the benchmark-scale sweep
"""

import sys

from repro.experiments import DEFAULT, SMOKE, figure1, figure2, figure5
from repro.experiments.reporting import group_mean, format_table


def main() -> None:
    config = DEFAULT if "--default" in sys.argv else SMOKE

    print("running the simple-linear sweep (Figure 1)...")
    rows = figure1(config)
    aggregated = group_mean(
        rows, ["predicate_profile", "tgd_profile"], ["n_rules", "t_parse", "t_graph", "t_comp", "t_total"]
    )
    print(format_table(aggregated, title="Figure 1 — IsChaseFinite[SL] runtime (seconds, means)"))

    print("\nrunning the shape-count sweep (Figure 2)...")
    rows = figure2(config)
    aggregated = group_mean(rows, ["predicate_profile", "n_tuples_per_relation"], ["n_shapes"])
    print(format_table(aggregated, title="Figure 2 — number of shapes per database size"))

    print("\nrunning the linear sweep for the largest predicate profile (Figure 5)...")
    rows = figure5(config)
    aggregated = group_mean(rows, ["tgd_profile"], ["n_rules", "t_parse", "t_graph", "t_comp", "t_total"])
    print(format_table(aggregated, title="Figure 5 — db-independent runtime of IsChaseFinite[L] (seconds, means)"))

    print(
        "\nTake-home messages (compare with Sections 7.3 and 8.3 of the paper):\n"
        "  * runtime grows with the number of rules, not with the database;\n"
        "  * the special-SCC search (t-comp) is a small fraction of the total;\n"
        "  * the number of shapes grows slowly with the database size and\n"
        "    faster with the number of predicates."
    )


if __name__ == "__main__":
    main()
