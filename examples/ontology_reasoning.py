"""Ontology-mediated query answering over a DL-Lite / LUBM-style ontology.

Linear TGDs capture DL-Lite_R, the logic behind OWL 2 QL (Section 1.3 of the
paper).  This example builds the LUBM-style ontology and data shipped with
the library, checks that the semi-oblivious chase terminates (it does — the
ontology is weakly acyclic w.r.t. the data), materialises the chase, and
answers a few atomic queries over the materialisation.

Run with::

    python examples/ontology_reasoning.py
"""

from repro import InMemoryShapeFinder, chase, is_chase_finite_l
from repro.core.predicates import Predicate
from repro.scenarios import build_lubm


def count(instance, predicate_name, arity):
    return len(instance.atoms_with_predicate(Predicate(predicate_name, arity)))


def main() -> None:
    scenario = build_lubm("LUBM-1")
    rules = scenario.tgds
    store = scenario.store

    print(f"ontology rules : {len(rules)} (simple-linear: {rules.is_simple_linear()})")
    print(f"data           : {store.total_rows()} facts over {len(store.non_empty_predicates())} relations")

    report = is_chase_finite_l(InMemoryShapeFinder(store), rules)
    print(f"IsChaseFinite[L]: finite={report.finite}")
    print(f"  shapes found        : {report.statistics['n_initial_shapes']}")
    print(f"  simplified TGDs kept: {report.statistics['n_simplified_rules']}")
    print(f"  db-dependent time   : {report.timings.db_dependent * 1000:.2f} ms")
    print(f"  db-independent time : {report.timings.db_independent * 1000:.2f} ms")

    print("\nmaterialising the chase ...")
    result = chase(store.to_database(), rules)
    assert result.terminated
    print(f"materialisation: {len(result.instance)} atoms after {result.rounds} rounds")

    print("\nquery answers over the materialisation (vs the raw data):")
    for name in ("Person", "Student", "Employee", "Organization", "Course"):
        before = count(store.to_database(), name, 1)
        after = count(result.instance, name, 1)
        print(f"  {name:<14} raw={before:<5} entailed={after}")


if __name__ == "__main__":
    main()
