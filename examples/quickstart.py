"""Quickstart: parse rules and a database, check chase termination, run the chase.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ChaseLimits,
    chase,
    is_chase_finite_l,
    is_chase_finite_sl,
    parse_database,
    parse_rules,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A terminating set of simple-linear TGDs (inclusion dependencies).
    rules = parse_rules(
        """
        % Every employee works in a department; departments have managers,
        % and managers are employees of that same department.
        Employee(e,d)   -> Department(d,m)
        Department(d,m) -> Employee(m,d)
        """
    )
    database = parse_database("Employee(alice, cs).")

    report = is_chase_finite_sl(database, rules)
    print("=== terminating scenario ===")
    print(f"algorithm : {report.algorithm}")
    print(f"finite?   : {report.finite}")
    print(f"statistics: {report.statistics}")

    result = chase(database, rules)
    print(f"chase size: {len(result.instance)} atoms (terminated={result.terminated})")
    for atom in result.instance:
        print(f"  {atom!r}")

    # ------------------------------------------------------------------ #
    # 2. A non-terminating variant: the manager now gets a *fresh* department.
    bad_rules = parse_rules(
        """
        Employee(e,d)   -> Department(d,m)
        Department(d,m) -> Employee(m,d2)
        """
    )
    report = is_chase_finite_sl(database, bad_rules)
    print("\n=== non-terminating scenario ===")
    print(f"finite?   : {report.finite}")
    bounded = chase(database, bad_rules, limits=ChaseLimits(max_atoms=20))
    print(f"chase stopped by budget after {len(bounded.instance)} atoms "
          f"(reason: {bounded.stop_reason})")

    # ------------------------------------------------------------------ #
    # 3. Linear (non-simple) rules need the database-aware checker.
    linear_rules = parse_rules("SameAs(x,x) -> SameAs(x,z), SameAs(z,z)")
    print("\n=== linear rules: the database decides ===")
    for facts in ("SameAs(a,b).", "SameAs(a,a)."):
        verdict = is_chase_finite_l(parse_database(facts), linear_rules)
        print(f"database {facts:<15} -> finite? {verdict.finite}")


if __name__ == "__main__":
    main()
