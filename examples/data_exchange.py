"""Data exchange: source-to-target mappings, termination, and universal solutions.

This example mirrors the classic data-exchange use of the chase (Fagin et
al.): a source schema is mapped into a target schema by simple-linear TGDs,
the termination checker confirms that materialisation is safe, and the chase
then computes a universal solution.  A second mapping with a feedback loop
shows the checker rejecting materialisation before any work is wasted.

Run with::

    python examples/data_exchange.py
"""

from repro import (
    ChaseLimits,
    chase,
    is_chase_finite_sl,
    is_weakly_acyclic,
    parse_database,
    parse_rules,
)
from repro.chase import satisfies

SOURCE_DATA = """
% source relations: a small HR database
Emp(alice, cs).
Emp(bob, cs).
Emp(carol, math).
Dept(cs, building7).
Dept(math, building2).
"""

#: A weakly-acyclic source-to-target mapping plus target constraints.
MAPPING = """
% source-to-target TGDs
Emp(e,d)  -> Works(e,d), Person(e)
Dept(d,b) -> Unit(d,b)

% target TGDs: every unit has a head, and heads are persons
Unit(d,b)   -> HeadOf(h,d)
HeadOf(h,d) -> Person(h)
"""

#: The same mapping with a feedback rule that makes the chase infinite:
#: every head must itself work somewhere, and working somewhere spawns a unit.
LOOPING_MAPPING = MAPPING + """
HeadOf(h,d) -> Works(h,d2)
Works(e,d)  -> Unit(d,b)
"""


def materialise(name: str, rules_text: str) -> None:
    rules = parse_rules(rules_text)
    source = parse_database(SOURCE_DATA)

    print(f"=== {name} ===")
    print(f"rules: {len(rules)}  (weakly acyclic: {is_weakly_acyclic(rules)})")
    report = is_chase_finite_sl(source, rules)
    print(f"IsChaseFinite[SL]: finite={report.finite}  "
          f"special SCCs={report.statistics['n_special_sccs']}")

    if report.finite:
        result = chase(source, rules)
        assert result.terminated
        assert satisfies(result.instance, rules)
        target_atoms = [a for a in result.instance if a.predicate.name not in ("Emp", "Dept")]
        print(f"universal solution: {len(result.instance)} atoms "
              f"({len(target_atoms)} target atoms), computed in {result.rounds} rounds")
        for atom in sorted(target_atoms, key=repr)[:8]:
            print(f"  {atom!r}")
        if len(target_atoms) > 8:
            print(f"  ... and {len(target_atoms) - 8} more")
    else:
        bounded = chase(source, rules, limits=ChaseLimits(max_atoms=200))
        print(f"materialisation skipped: the chase exceeded {len(bounded.instance)} atoms "
              "and would never stop")
    print()


def main() -> None:
    materialise("terminating exchange mapping", MAPPING)
    materialise("looping exchange mapping", LOOPING_MAPPING)


if __name__ == "__main__":
    main()
