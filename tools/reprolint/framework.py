"""The reprolint checker framework: walker, waivers, reporting.

A checker is a small class with a ``name``, a path scope, and a ``check``
method yielding :class:`Finding`s for one parsed module.  The framework owns
everything around that: discovering files, parsing them once, routing each
module to the checkers whose scope matches, applying inline waivers, and
rendering human or JSON output.

Waivers
-------
A finding is waived by a comment on the finding's line (or a standalone
comment on the line directly above it)::

    conn.close()  # reprolint: disable=lock-discipline -- <justification>

The justification text after ``--`` is mandatory: the waiver *is* the
documentation of why the invariant may be broken here, so an empty one is
reported as a ``waiver`` finding and fails the lint.  So does a waiver that
matches no finding (``waiver-unused``) — stale waivers would otherwise
silently disable future detections on that line.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: ``# reprolint: disable=rule-a,rule-b -- justification``
WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Finding:
    """One rule violation (or waiver problem) at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    justification: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "justification": self.justification,
        }


@dataclass
class Waiver:
    """One parsed ``# reprolint: disable=...`` comment."""

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: str
    #: The source line the waiver covers (its own line, or the next line
    #: when the comment stands alone).
    covers_line: int
    used: bool = False


@dataclass
class ModuleSource:
    """One parsed module, shared by every checker that scopes to it."""

    path: Path
    rel: str  # posix-style path relative to the scanned root
    text: str
    lines: List[str]
    tree: ast.Module


class Checker:
    """Base class: subclasses set ``name`` and implement :meth:`check`.

    ``include`` lists posix path fragments; a module is routed to the
    checker when any fragment is a substring of (or fnmatch pattern
    matching) its root-relative path.  An empty tuple scopes the checker to
    every module.
    """

    name: str = ""
    description: str = ""
    include: Tuple[str, ...] = ()

    def matches(self, rel: str) -> bool:
        if not self.include:
            return True
        return any(
            fragment in rel or fnmatch.fnmatch(rel, fragment)
            for fragment in self.include
        )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError


@dataclass
class LintReport:
    """Everything one lint run produced, pre-split by waiver status."""

    findings: List[Finding] = field(default_factory=list)  # active (fail the lint)
    waived: List[Finding] = field(default_factory=list)
    waivers: List[Waiver] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [finding.as_dict() for finding in self.findings],
            "waived": [finding.as_dict() for finding in self.waived],
            "waivers": [
                {
                    "path": waiver.path,
                    "line": waiver.line,
                    "rules": list(waiver.rules),
                    "justification": waiver.justification,
                    "used": waiver.used,
                }
                for waiver in self.waivers
            ],
        }


def parse_waivers(rel: str, lines: Sequence[str]) -> List[Waiver]:
    """Extract every waiver comment of a module."""
    waivers: List[Waiver] = []
    for index, line in enumerate(lines, start=1):
        match = WAIVER_RE.search(line)
        if match is None:
            continue
        standalone = line.strip().startswith("#")
        waivers.append(
            Waiver(
                path=rel,
                line=index,
                rules=tuple(
                    rule.strip() for rule in match.group("rules").split(",") if rule.strip()
                ),
                justification=(match.group("why") or "").strip(),
                covers_line=index + 1 if standalone else index,
            )
        )
    return waivers


def discover_files(paths: Sequence[Path]) -> List[Tuple[Path, Path]]:
    """Resolve *paths* to ``(root, file)`` pairs, sorted for determinism."""
    pairs: List[Tuple[Path, Path]] = []
    for path in paths:
        if path.is_file():
            pairs.append((path.parent, path))
        elif path.is_dir():
            pairs.extend((path, file) for file in sorted(path.rglob("*.py")))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return pairs


def load_module(root: Path, path: Path) -> ModuleSource:
    text = path.read_text(encoding="utf-8")
    return ModuleSource(
        path=path,
        rel=path.relative_to(root).as_posix(),
        text=text,
        lines=text.splitlines(),
        tree=ast.parse(text, filename=str(path)),
    )


def _apply_waivers(
    findings: List[Finding], waivers: List[Waiver], report: LintReport
) -> None:
    """Split *findings* into active/waived; flag broken or stale waivers."""
    by_line: Dict[Tuple[str, int], List[Waiver]] = {}
    for waiver in waivers:
        by_line.setdefault((waiver.path, waiver.covers_line), []).append(waiver)
        report.waivers.append(waiver)

    for finding in findings:
        waiver = next(
            (
                candidate
                for candidate in by_line.get((finding.path, finding.line), ())
                if finding.rule in candidate.rules
            ),
            None,
        )
        if waiver is None:
            report.findings.append(finding)
            continue
        waiver.used = True
        if not waiver.justification:
            # The waiver applies but is unjustified: keep the original
            # finding active and add the waiver error, so the lint stays
            # red until the author writes down *why*.
            report.findings.append(finding)
        else:
            finding.waived = True
            finding.justification = waiver.justification
            report.waived.append(finding)

    for waiver in waivers:
        if not waiver.justification:
            report.findings.append(
                Finding(
                    rule="waiver",
                    path=waiver.path,
                    line=waiver.line,
                    col=0,
                    message=(
                        "waiver without justification: write "
                        "'# reprolint: disable=<rule> -- <why this is safe>'"
                    ),
                )
            )
        elif not waiver.used:
            report.findings.append(
                Finding(
                    rule="waiver-unused",
                    path=waiver.path,
                    line=waiver.line,
                    col=0,
                    message=(
                        f"waiver for {', '.join(waiver.rules)} matches no finding; "
                        "remove it (stale waivers mask future violations)"
                    ),
                )
            )


def run_lint(
    paths: Sequence[Path],
    checkers: Sequence[Checker],
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run *checkers* (optionally narrowed to *rules*) over *paths*."""
    selected = [
        checker
        for checker in checkers
        if rules is None or checker.name in rules
    ]
    report = LintReport()
    all_findings: List[Finding] = []
    all_waivers: List[Waiver] = []
    for root, path in discover_files(paths):
        module = load_module(root, path)
        report.files_checked += 1
        all_waivers.extend(parse_waivers(module.rel, module.lines))
        for checker in selected:
            if checker.matches(module.rel):
                all_findings.extend(checker.check(module))
    all_findings.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    _apply_waivers(all_findings, all_waivers, report)
    report.findings.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return report


def render_human(report: LintReport, stream=None, verbose: bool = False) -> None:
    stream = stream if stream is not None else sys.stdout
    for finding in report.findings:
        print(f"{finding.location()}: [{finding.rule}] {finding.message}", file=stream)
    if verbose:
        for finding in report.waived:
            print(
                f"{finding.location()}: [{finding.rule}] waived -- {finding.justification}",
                file=stream,
            )
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    print(
        f"reprolint: {report.files_checked} file(s), {len(report.waived)} waived, {status}",
        file=stream,
    )


def render_json(report: LintReport, stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    json.dump(report.as_dict(), stream, indent=2, sort_keys=True)
    stream.write("\n")


class Iterators:
    """Small shared AST helpers used by several checkers."""

    @staticmethod
    def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def is_self_attr(node: ast.AST, attr: str) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    @staticmethod
    def call_name(node: ast.Call) -> str:
        """The rightmost name of a call target (``a.b.c() -> 'c'``)."""
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""
