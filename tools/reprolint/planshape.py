"""Plan-shape mode: EXPLAIN every compiled statement family, flag scans.

The two hand-written ``EXPLAIN QUERY PLAN`` tests in
``tests/storage/test_sql_pushdown.py`` pin the plans of one rule shape.
This module generalises them: it instantiates every compiled statement
family over a panel of representative programs — multi-slot joins,
self-joins, multi-head rules, and a linear set exercising the
recursive-CTE tier — runs ``EXPLAIN QUERY PLAN`` on each against a live
:class:`SqliteAtomStore` schema, and reports a finding for every relation
access that degraded to a table scan.

Scan policy (mirroring the strict test convention):

* ``SCAN`` over the compiler's temp artifacts is expected — the per-rule
  ``pd_stage_*``/``pd_fired_*``/``pd_fire_*`` tables (aliases ``w``/``f``),
  the CTE recursion ``ch``, ``pd_cte_atoms``, and SQLite's own subquery /
  materialization nodes.  They hold per-round frontiers, not relations.
* A ``SCAN`` of a ``rel_*`` table or a body/head alias (``t0``, ``h1``)
  is allowed only as a **covering-index** scan inside a statement family
  whose semantics *are* full enumeration: the initial (non-delta) body
  join and the CTE base branches, which by definition read every seed
  atom once.
* Everything else — a bare rowid ``SCAN`` anywhere, or any relation scan
  in a delta-parameterized statement — is a finding: the semi-naive
  watermarks or join indexes stopped being used.

Run through ``python -m tools.reprolint --plan-shape`` (from the repo
root; ``src`` is bootstrapped onto ``sys.path``).
"""

from __future__ import annotations

import itertools
import re
import sys
from pathlib import Path
from typing import Iterable, List, Sequence

from .framework import Finding

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
RULE_NAME = "plan-shape"

#: ``SCAN <target> [USING ...]`` — EXPLAIN QUERY PLAN detail rows.
_SCAN_RE = re.compile(r"^SCAN\s+(?P<target>\S+)(?P<rest>.*)$")
#: Temp-artifact scan targets that are always fine.
_TEMP_TARGETS = ("w", "f", "ch")
_TEMP_PREFIXES = ("pd_", "sqlite_", "(")
#: Per-process EXPLAIN nonce (see :meth:`PlanCase.audit`).
_AUDIT_COUNTER = itertools.count()


def _bootstrap_src() -> None:
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


class PlanCase:
    """One compiled statement to EXPLAIN.

    *full_enumeration* marks families whose job is to read whole relations
    (initial joins, CTE base branches): covering-index relation scans are
    expected there and only rowid scans are flagged.
    """

    def __init__(
        self,
        family: str,
        label: str,
        sql: str,
        parameters: dict,
        store,
        full_enumeration: bool = False,
    ) -> None:
        self.family = family
        self.label = label
        self.sql = sql
        self.parameters = parameters
        self.store = store
        self.full_enumeration = full_enumeration

    def audit(self) -> List[str]:
        """Return one message per plan violation in this statement."""
        # The sqlite3 module caches prepared statements by text, and a
        # cached EXPLAIN replays the plan compiled under the *old* schema —
        # a dropped index would go unnoticed.  A unique comment defeats the
        # cache so every audit compiles fresh.
        nonce = next(_AUDIT_COUNTER)
        rows = self.store.query(
            f"EXPLAIN QUERY PLAN /* audit {nonce} */ " + self.sql, self.parameters
        )
        details = [row[-1] for row in rows]
        problems: List[str] = []
        for detail in details:
            match = _SCAN_RE.match(detail)
            if match is None:
                continue
            target = match.group("target")
            if target in _TEMP_TARGETS or target.startswith(_TEMP_PREFIXES):
                continue
            covered = "COVERING INDEX" in detail
            if self.full_enumeration and covered:
                continue
            kind = "covering-index scan" if covered else "table scan"
            problems.append(
                f"{self.label}: relation access degraded to a {kind}: "
                f"{detail!r} (full plan: {details})"
            )
        return problems


def _program_cases() -> Iterable[PlanCase]:
    """Instantiate every compiled statement family over the program panel."""
    _bootstrap_src()
    from repro.core.parser import parse_database, parse_rules
    from repro.storage.sqlbackend.plans import CompiledBodyQuery
    from repro.storage.sqlbackend.pushdown import (
        CompiledPlanQuery,
        CompiledRule,
        _RecursiveCteTier,
        register_skolem_function,
    )
    from repro.storage.sqlbackend.store import SqliteAtomStore

    delta_params = {"delta_start": 0, "round_start": 10}

    def compiled_rule_cases(
        tag: str, facts: str, rules_text: str, variant: str
    ) -> Iterable[PlanCase]:
        """stage / record / filter / head-insert for each rule of a program."""
        store = SqliteAtomStore()
        store.load_database(parse_database(facts))
        register_skolem_function(store)
        for index, tgd in enumerate(parse_rules(rules_text)):
            rule = CompiledRule(index, tgd, variant, store)
            label = f"{tag}[rule {index}, {variant}]"
            for slot in range(len(tgd.body)):
                yield PlanCase(
                    "stage", f"{label} stage(seed_slot={slot})",
                    rule.stage_sql(slot), delta_params, store,
                )
            yield PlanCase("record", f"{label} record", rule.record_sql, {}, store)
            if rule.firing_sql is not None:
                yield PlanCase(
                    "filter", f"{label} filter_unsatisfied",
                    rule.firing_sql, {"round_start": 10}, store,
                )
            for head_sql, _predicate in rule.head_inserts:
                yield PlanCase(
                    "insert", f"{label} head insert",
                    head_sql, {"round_seq": 11}, store,
                )

    def body_query_cases(tag: str, facts: str, rules_text: str) -> Iterable[PlanCase]:
        """plans.py tier: initial and per-slot delta body joins."""
        store = SqliteAtomStore()
        store.load_database(parse_database(facts))
        for tgd in parse_rules(rules_text):
            initial = CompiledBodyQuery(tgd, None)
            yield PlanCase(
                "body-initial", f"{tag} body initial", initial.sql,
                dict(initial.parameters), store, full_enumeration=True,
            )
            for slot in range(len(tgd.body)):
                delta = CompiledBodyQuery(tgd, slot)
                yield PlanCase(
                    "body-delta", f"{tag} body delta(seed_slot={slot})",
                    delta.sql, {**delta.parameters, "delta_start": 0}, store,
                )

    def plan_query_cases(tag: str, facts: str, rules_text: str) -> Iterable[PlanCase]:
        """CompiledPlanQuery: the parallel workers' partitioned joins."""
        store = SqliteAtomStore()
        store.load_database(parse_database(facts))
        for tgd in parse_rules(rules_text):
            for partitioned in (False, True):
                query = CompiledPlanQuery(tgd, 0, (), store, partitioned=partitioned)
                suffix = "partitioned" if partitioned else "unpartitioned"
                part_params = (
                    {"n_workers": 4, "worker_id": 0} if partitioned else {}
                )
                yield PlanCase(
                    "worker-initial", f"{tag} worker initial ({suffix})",
                    query._initial_sql, part_params, store, full_enumeration=True,
                )
                yield PlanCase(
                    "worker-delta", f"{tag} worker delta ({suffix})",
                    query._delta_sql, {**part_params, "delta_start": 0}, store,
                )

    def cte_cases(tag: str, facts: str, rules_text: str) -> Iterable[PlanCase]:
        """The recursive-CTE tier: recursion, trigger counts, final inserts."""
        store = SqliteAtomStore()
        store.load_database(parse_database(facts))
        register_skolem_function(store)
        rules = [
            CompiledRule(index, tgd, "semi-oblivious", store)
            for index, tgd in enumerate(parse_rules(rules_text))
        ]
        tier = _RecursiveCteTier(rules, store)
        params = {**tier._params, "cap": 8}
        yield PlanCase(
            "cte", f"{tag} recursive CTE", tier.cte_sql, params, store,
            full_enumeration=True,
        )
        for index, count_sql in enumerate(tier._count_sqls):
            yield PlanCase(
                "cte-count", f"{tag} trigger count[rule {index}]",
                count_sql, {**tier._params, "cutoff": 3}, store,
            )
        for predicate in tier.predicates:
            yield PlanCase(
                "cte-insert", f"{tag} final insert[{predicate.name}]",
                tier.final_insert_sql(predicate),
                {**tier._params, "base": 0, "pred": predicate.name, "stop": 3},
                store,
            )

    join_facts = "Q(a,b).\nR(b,c).\nS(a,c,d).\n"
    join_rules = "Q(x1,x2), R(x2,x3) -> S(x1,x3,z1)\n"
    self_join_facts = "R(a,b).\nR(b,c).\n"
    self_join_rules = "R(x,y), R(y,z) -> R(x,z)\n"
    multi_head_facts = "R(a,b).\nS(b,c).\nT(c,a).\n"
    multi_head_rules = "R(x,y) -> S(y,z), T(z,x)\n"
    linear_facts = "R(a,b).\nS(b,c).\nT(c).\n"
    linear_rules = "R(x,y) -> S(y,z)\nS(x,y) -> T(x)\n"

    yield from compiled_rule_cases("join", join_facts, join_rules, "restricted")
    yield from compiled_rule_cases("join", join_facts, join_rules, "semi-oblivious")
    yield from compiled_rule_cases("join", join_facts, join_rules, "oblivious")
    yield from compiled_rule_cases(
        "self-join", self_join_facts, self_join_rules, "semi-oblivious"
    )
    yield from compiled_rule_cases(
        "multi-head", multi_head_facts, multi_head_rules, "restricted"
    )
    yield from body_query_cases("join", join_facts, join_rules)
    yield from body_query_cases("self-join", self_join_facts, self_join_rules)
    yield from plan_query_cases("join", join_facts, join_rules)
    yield from cte_cases("linear", linear_facts, linear_rules)


#: Families the panel must produce at least one statement for — a guard
#: against the audit silently going vacuous after a refactor.
REQUIRED_FAMILIES = frozenset(
    {
        "stage",
        "record",
        "filter",
        "insert",
        "body-initial",
        "body-delta",
        "worker-initial",
        "worker-delta",
        "cte",
        "cte-count",
        "cte-insert",
    }
)


def collect_cases() -> List[PlanCase]:
    return list(_program_cases())


def run_plan_shape() -> List[Finding]:
    """Audit every statement family; return findings (empty = clean)."""
    findings: List[Finding] = []
    cases = collect_cases()
    seen_families = {case.family for case in cases}
    missing = sorted(REQUIRED_FAMILIES - seen_families)
    if missing:
        findings.append(
            Finding(
                rule=RULE_NAME,
                path="tools/reprolint/planshape.py",
                line=0,
                col=0,
                message=(
                    "plan-shape panel no longer produces statement "
                    f"families: {', '.join(missing)} — the audit went vacuous"
                ),
            )
        )
    for case in cases:
        for problem in case.audit():
            findings.append(
                Finding(
                    rule=RULE_NAME,
                    path=f"plan:{case.family}",
                    line=0,
                    col=0,
                    message=problem,
                )
            )
    return findings


def main(argv: Sequence[str] = ()) -> int:
    findings = run_plan_shape()
    for finding in findings:
        print(f"{finding.path}: [{finding.rule}] {finding.message}")
    cases = collect_cases()
    print(
        f"plan-shape: {len(cases)} statement(s) across "
        f"{len({case.family for case in cases})} families, "
        f"{len(findings)} finding(s)"
    )
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
