"""``determinism``: no unordered iteration or ambient inputs on result paths.

The conformance suite pins byte-identical ``ChaseResult``s across strategies,
backends, and worker counts.  Two things silently break that property:

* **Unordered ``set`` iteration** feeding anything order-sensitive — store
  insertion (seq watermarks!), returned lists, serialized output.  Sets hash
  by ``PYTHONHASHSEED``-salted ``hash()`` for str-bearing keys, so the same
  program can emit differently ordered results run to run.
* **Ambient inputs** — wall clock, randomness, object addresses (``id()``),
  environment variables — anywhere in ``core``/``chase``/``storage``/
  ``fuzz``/``obs``.

The checker runs in two tiers.  Modules under the result-path fragments
(:data:`DeterminismChecker.FULL_SCOPE`) get every check.  Every *other*
module in the tree gets the clock-only tier: wall-clock reads (``time.*``
calls, ``from time import ...`` call sites, ``datetime.now/utcnow/today``)
are flagged with a pointer at :mod:`repro.obs.clock` — the observability
layer is the single module allowed to touch the wall clock (its two reads
carry justified waivers), so every duration in the tree flows through one
injectable, testable seam.  Randomness, ``id()``, environment reads, and
set iteration stay legal outside the result paths (the experiment harness
seeds its own RNGs deliberately).

The full tier flags iteration constructs whose iterable is (statically) a set:
``for`` loops, ``list()``/``tuple()``/``enumerate()`` conversions, and list/
generator/dict comprehensions.  Order-insensitive consumers are exempt: a
set comprehension, membership tests, and arguments of
``sorted``/``min``/``max``/``sum``/``len``/``any``/``all``/``set``/
``frozenset`` — wrapping the iterable in ``sorted()`` is the canonical fix.

Set-ness is inferred per scope from set literals, ``set()``/``frozenset()``
calls, set comprehensions, set-algebra operators, and ``Set[...]`` /
``FrozenSet[...]`` annotations on assignments and parameters.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..framework import Checker, Finding, ModuleSource

#: Calls whose result does not depend on argument order.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)
#: Modules whose call surface is inherently run-dependent.
BANNED_MODULES = frozenset({"time", "random", "uuid", "secrets"})
#: ``from <module> import <name>`` combinations that are run-dependent.
BANNED_FROM_IMPORTS = frozenset(
    {
        ("time", "time"),
        ("time", "monotonic"),
        ("time", "perf_counter"),
        ("time", "time_ns"),
        ("random", "random"),
        ("random", "randint"),
        ("random", "choice"),
        ("random", "shuffle"),
        ("uuid", "uuid4"),
        ("uuid", "uuid1"),
        ("os", "getenv"),
        ("os", "urandom"),
    }
)
SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "set", "frozenset", "MutableSet", "AbstractSet"})


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[", 1)[0].rsplit(".", 1)[-1].strip()
        return text in SET_ANNOTATIONS
    return False


class _SetEnv:
    """Names statically known to hold sets within one scope."""

    def __init__(self, parent: Optional["_SetEnv"] = None) -> None:
        self.parent = parent
        self.set_names: Set[str] = set()
        self.nonset_names: Set[str] = set()

    def mark(self, name: str, is_set: bool) -> None:
        (self.set_names if is_set else self.nonset_names).add(name)
        (self.nonset_names if is_set else self.set_names).discard(name)

    def is_set(self, name: str) -> bool:
        if name in self.set_names:
            return True
        if name in self.nonset_names:
            return False
        return self.parent.is_set(name) if self.parent else False


def _is_set_expr(node: ast.expr, env: _SetEnv) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return env.is_set(node.id)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        }:
            return _is_set_expr(func.value, env)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, env) or _is_set_expr(node.right, env)
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, env) or _is_set_expr(node.orelse, env)
    return False


class _ScopeChecker(ast.NodeVisitor):
    """Check one function (or the module top level) with its own name env."""

    def __init__(
        self,
        checker: "DeterminismChecker",
        module: ModuleSource,
        env: _SetEnv,
        findings: List[Finding],
        clock_only: bool = False,
    ) -> None:
        self.checker = checker
        self.module = module
        self.env = env
        self.findings = findings
        #: Clock-only tier (modules off the result paths): only wall-clock
        #: reads are flagged; set iteration, randomness, id(), and
        #: environment reads stay legal there.
        self.clock_only = clock_only
        #: Nodes exempt from iteration flagging (args of order-insensitive
        #: calls, membership-test operands).
        self.exempt: Set[int] = set()

    # -- scope boundaries -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.checker.check_function(
            self.module, node, self.env, self.findings, self.clock_only
        )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.checker.check_function(
            self.module, node, self.env, self.findings, self.clock_only
        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            self.visit(stmt)

    # -- set-ness environment --------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = _is_set_expr(node.value, self.env)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.env.mark(target.id, is_set)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation):
                self.env.mark(node.target.id, True)
            elif node.value is not None:
                self.env.mark(node.target.id, _is_set_expr(node.value, self.env))

    # -- exemptions -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ORDER_INSENSITIVE_CALLS:
            for arg in node.args:
                self.exempt.add(id(arg))
        self._check_banned_call(node)
        self._check_conversion(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)):
                self.exempt.add(id(comparator))
        self.generic_visit(node)

    # -- flag sites -------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._flag_if_set_iter(node.iter, "for-loop iterates")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr, kind: str) -> None:
        if id(node) not in self.exempt:
            for generator in node.generators:  # type: ignore[attr-defined]
                self._flag_if_set_iter(generator.iter, f"{kind} iterates")
        for generator in node.generators:  # type: ignore[attr-defined]
            self.visit(generator.iter)
            for cond in generator.ifs:
                self.visit(cond)
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.comprehension):
                self.visit(child)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, "generator expression")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, "dict comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Output is itself a set: order-insensitive by construction.
        self.generic_visit(node)

    def _check_conversion(self, node: ast.Call) -> None:
        if id(node) in self.exempt:  # e.g. sorted(list(s))
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            self._flag_if_set_iter(node.args[0], "str.join() serialises")
            return
        if not isinstance(func, ast.Name) or func.id not in {"list", "tuple", "enumerate"}:
            return
        for arg in node.args[:1]:
            self._flag_if_set_iter(arg, f"{func.id}() materialises")

    def _flag_if_set_iter(self, iterable: ast.expr, action: str) -> None:
        if self.clock_only or id(iterable) in self.exempt:
            return
        if _is_set_expr(iterable, self.env):
            self.findings.append(
                Finding(
                    rule=self.checker.name,
                    path=self.module.rel,
                    line=iterable.lineno,
                    col=iterable.col_offset,
                    message=(
                        f"{action} a set in unordered (hash) order; wrap it in "
                        "sorted(...) so downstream seq assignment / output is "
                        "run-independent"
                    ),
                )
            )

    # -- ambient inputs ---------------------------------------------------
    def _check_banned_call(self, node: ast.Call) -> None:
        func = node.func
        imports = self.checker.module_imports
        if isinstance(func, ast.Name):
            if func.id == "id" and len(node.args) == 1 and not self.clock_only:
                self._ban(node, "id() exposes interpreter addresses")
            origin = imports.from_names.get(func.id)
            if origin is not None and (origin == "time" or not self.clock_only):
                self._ban(node, f"{origin}.{func.id}() is run-dependent")
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = imports.module_aliases.get(func.value.id)
            if base == "time":
                self._ban(node, f"time.{func.attr}() is run-dependent")
            elif base == "datetime" and func.attr in {"now", "utcnow", "today"}:
                self._ban(node, f"datetime.{func.attr}() is run-dependent")
            elif self.clock_only:
                return
            elif base in BANNED_MODULES:
                self._ban(node, f"{base}.{func.attr}() is run-dependent")
            elif base == "os" and func.attr in {"getenv", "urandom"}:
                self._ban(node, f"os.{func.attr}() is run-dependent")

    def _ban(self, node: ast.Call, why: str) -> None:
        if self.clock_only:
            remedy = (
                "route timing through repro.obs.clock (perf_counter_s, "
                "monotonic_s, or an injectable Clock) — the obs layer is the "
                "only module allowed to read the wall clock"
            )
        else:
            remedy = (
                "chase results must be a pure function of the rules and the "
                "database"
            )
        self.findings.append(
            Finding(
                rule=self.checker.name,
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset,
                message=f"{why}; {remedy}",
            )
        )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        imports = self.checker.module_imports
        if (
            not self.clock_only
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "environ"
            and isinstance(node.value.value, ast.Name)
            and imports.module_aliases.get(node.value.value.id) == "os"
        ):
            self.findings.append(
                Finding(
                    rule=self.checker.name,
                    path=self.module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "os.environ read is run-dependent; chase results must be "
                        "a pure function of the rules and the database"
                    ),
                )
            )
        self.generic_visit(node)


class _Imports:
    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}  # local name -> module
        self.from_names: Dict[str, str] = {}  # local name -> origin module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES | {"os", "datetime"}:
                        self.module_aliases[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                for alias in node.names:
                    if (root, alias.name) in BANNED_FROM_IMPORTS:
                        self.from_names[alias.asname or alias.name] = root


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no unordered set iteration and no clock/randomness/address/"
        "environment dependence on chase result paths; wall-clock reads "
        "everywhere else must go through repro.obs.clock"
    )
    include = ()
    #: Result-path fragments getting every check; all other modules get the
    #: clock-only tier.
    FULL_SCOPE = ("core/", "chase/", "storage/", "fuzz/", "obs/")

    def __init__(self) -> None:
        self.module_imports = _Imports(ast.parse(""))

    def _clock_only(self, rel: str) -> bool:
        return not any(fragment in rel for fragment in self.FULL_SCOPE)

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        self.module_imports = _Imports(module.tree)
        clock_only = self._clock_only(module.rel)
        scope = _ScopeChecker(self, module, _SetEnv(), findings, clock_only)
        for stmt in module.tree.body:
            scope.visit(stmt)
        return findings

    def check_function(
        self,
        module: ModuleSource,
        node: ast.AST,
        parent_env: _SetEnv,
        findings: List[Finding],
        clock_only: bool = False,
    ) -> None:
        env = _SetEnv(parent_env)
        args = node.args  # type: ignore[attr-defined]
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if _annotation_is_set(arg.annotation):
                env.mark(arg.arg, True)
        scope = _ScopeChecker(self, module, env, findings, clock_only)
        for stmt in node.body:  # type: ignore[attr-defined]
            scope.visit(stmt)
