"""``sql-identifier``: interpolated SQL identifiers go through the escapers.

Values in ``storage/sqlbackend/`` travel as ``?``/named parameters, but
*identifiers* (table and column names) cannot — SQLite has no identifier
parameters — so the backend builds statements with f-strings.  The contract:
every identifier interpolated into SQL text is produced by the case-escaping
helpers (``_quote``, which double-quotes and doubles embedded quotes, over
``table_name``, which lower-cases with ``^`` escapes) or is a precomputed
attribute that already went through them.  Raw ``predicate.name`` — which is
user-controlled input from rule files — must never reach statement text.

The checker finds string-building expressions (f-strings, ``%`` formatting,
``str.format``, ``+`` concatenation) whose literal fragments look like SQL,
then taints each interpolated expression:

* ``<anything>.name`` is tainted (the raw predicate/variable name);
* calls to ``table_name`` are tainted (case-escaped but *unquoted*);
* calls to ``_quote`` (and the SQL-emitting helpers ``read_source``,
  ``insert_guard``, ``stage_sql``, ``cte_sql``, ``record_sql``,
  ``final_insert_sql``, ``firing_sql``, ``_sql_string``, ``encode_term``)
  are safe regardless of their arguments;
* local names inherit the taint of what was assigned to them;
* subscripts take the taint of the container (a dict of precomputed quoted
  names indexed by a raw name is safe);
* anything else unions the taint of its parts.

The helpers themselves (``_quote``, ``table_name``, ``_sql_string``) are
skipped — their bodies legitimately manipulate raw identifier text.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional

from ..framework import Checker, Finding, ModuleSource

# Strong statement keywords only: words like EXISTS/TABLE/INTO also occur in
# prose (exception messages say "already exists"), but real statement text
# always carries at least one of these.
SQL_KEYWORD_RE = re.compile(
    r"\b(SELECT|INSERT|UPDATE|DELETE|CREATE|DROP|ALTER|ATTACH|PRAGMA|FROM|"
    r"WHERE|UNION|VALUES|EXPLAIN)\b",
    re.IGNORECASE,
)
#: Calls that return SQL-safe text regardless of their arguments.
SAFE_CALLS = frozenset(
    {
        "_quote",
        "quote_identifier",
        "read_source",
        "insert_guard",
        "stage_sql",
        "cte_sql",
        "record_sql",
        "final_insert_sql",
        "firing_sql",
        "_sql_string",
        "encode_term",
        "encode_value",
        "join",  # ", ".join(parts): taint comes from the parts, checked below
        "format",  # handled explicitly as a string-building site
        "len",
        "str",
        "int",
        "repr",
        "sql",
    }
)
#: Calls whose result is raw (unquoted) identifier text.
TAINT_CALLS = frozenset({"table_name"})
#: Function bodies to skip entirely: they implement the escaping itself.
HELPER_BODIES = frozenset({"_quote", "quote_identifier", "table_name", "_sql_string"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _TaintEnv:
    def __init__(self, parent: Optional["_TaintEnv"] = None) -> None:
        self.parent = parent
        self.taint: Dict[str, bool] = {}

    def get(self, name: str) -> bool:
        if name in self.taint:
            return self.taint[name]
        return self.parent.get(name) if self.parent else False

    def set(self, name: str, tainted: bool) -> None:
        self.taint[name] = tainted


def _expr_taint(node: ast.expr, env: _TaintEnv) -> bool:
    if isinstance(node, ast.Constant):
        return False
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        # ``predicate.name`` / ``variable.name`` is the raw identifier; other
        # attributes are precomputed (quoted) state.
        if node.attr == "name":
            return True
        return False
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in TAINT_CALLS:
            return True
        if name in SAFE_CALLS:
            if name == "join":
                return any(_expr_taint(arg, env) for arg in node.args)
            return False
        return any(_expr_taint(arg, env) for arg in node.args) or any(
            _expr_taint(keyword.value, env)
            for keyword in node.keywords
            if keyword.value is not None
        )
    if isinstance(node, ast.Subscript):
        return _expr_taint(node.value, env)
    if isinstance(node, ast.BinOp):
        return _expr_taint(node.left, env) or _expr_taint(node.right, env)
    if isinstance(node, ast.IfExp):
        return _expr_taint(node.body, env) or _expr_taint(node.orelse, env)
    if isinstance(node, ast.JoinedStr):
        return any(
            _expr_taint(value.value, env)
            for value in node.values
            if isinstance(value, ast.FormattedValue)
        )
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_expr_taint(element, env) for element in node.elts)
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return _expr_taint(node.elt, env)
    if isinstance(node, ast.Starred):
        return _expr_taint(node.value, env)
    return False


def _literal_fragments(node: ast.expr) -> List[str]:
    """The constant string pieces of a string-building expression."""
    if isinstance(node, ast.JoinedStr):
        return [
            value.value
            for value in node.values
            if isinstance(value, ast.Constant) and isinstance(value.value, str)
        ]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _literal_fragments(node.left) + _literal_fragments(node.right)
    return []


def _interpolations(node: ast.expr) -> List[ast.expr]:
    """The non-literal expressions spliced into a string-building expression."""
    if isinstance(node, ast.JoinedStr):
        return [
            value.value for value in node.values if isinstance(value, ast.FormattedValue)
        ]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _interpolations(node.left) + _interpolations(node.right)
    if isinstance(node, ast.Constant):
        return []
    return [node]


class SqlIdentifierChecker(Checker):
    name = "sql-identifier"
    description = (
        "string-built SQL in sqlbackend/ interpolates identifiers only via the "
        "case-escaping helpers (_quote over table_name)"
    )
    include = ("storage/sqlbackend/", "sqlbackend/")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._check_scope(module, module.tree.body, _TaintEnv(), findings)
        # Nested f-strings / concat chains are reachable along more than one
        # walk path; keep one finding per location.
        unique: Dict[tuple, Finding] = {}
        for finding in findings:
            unique.setdefault((finding.line, finding.col), finding)
        return list(unique.values())

    def _check_scope(
        self,
        module: ModuleSource,
        body: List[ast.stmt],
        env: _TaintEnv,
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in HELPER_BODIES:
                    continue
                self._check_scope(module, stmt.body, _TaintEnv(env), findings)
            elif isinstance(stmt, ast.ClassDef):
                self._check_scope(module, stmt.body, _TaintEnv(env), findings)
            else:
                self._check_statement(module, stmt, env, findings)

    def _check_statement(
        self,
        module: ModuleSource,
        stmt: ast.stmt,
        env: _TaintEnv,
        findings: List[Finding],
    ) -> None:
        # Nested defs inside plain statements (e.g. a function defined in a
        # with-block) still need scope handling.
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name not in HELPER_BODIES:
                    self._check_scope(module, node.body, _TaintEnv(env), findings)

        for node in self._walk_skipping_defs(stmt):
            built = None
            if isinstance(node, ast.JoinedStr):
                built = node
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if _literal_fragments(node.left):
                    self._check_built(
                        module,
                        node,
                        _literal_fragments(node.left),
                        self._mod_args(node.right),
                        env,
                        findings,
                    )
                continue
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "format" and _literal_fragments(node.func.value):
                    args = list(node.args) + [
                        keyword.value
                        for keyword in node.keywords
                        if keyword.value is not None
                    ]
                    self._check_built(
                        module,
                        node,
                        _literal_fragments(node.func.value),
                        args,
                        env,
                        findings,
                    )
                continue
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                # Only the outermost + of a concat chain.
                built = node
            if built is not None:
                self._check_built(
                    module,
                    built,
                    _literal_fragments(built),
                    _interpolations(built),
                    env,
                    findings,
                )

        # Track local assignment taint after checking the statement so the
        # string itself is validated before its name is reused.
        if isinstance(stmt, ast.Assign):
            tainted = _expr_taint(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.set(target.id, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                env.set(stmt.target.id, _expr_taint(stmt.value, env))
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if _expr_taint(stmt.value, env):
                env.set(stmt.target.id, True)
        elif isinstance(stmt, ast.For):
            # ``for column in columns:`` — the loop variable inherits the
            # taint of the iterable's elements (approximated by the iterable).
            if isinstance(stmt.target, ast.Name):
                env.set(stmt.target.id, _expr_taint(stmt.iter, env))
            for sub in stmt.body + stmt.orelse:
                self._check_statement(module, sub, env, findings)
        if isinstance(stmt, (ast.If, ast.While)):
            for sub in stmt.body + stmt.orelse:
                self._check_statement(module, sub, env, findings)
        elif isinstance(stmt, ast.With):
            for sub in stmt.body:
                self._check_statement(module, sub, env, findings)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._check_statement(module, sub, env, findings)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._check_statement(module, sub, env, findings)

    @staticmethod
    def _walk_skipping_defs(stmt: ast.stmt) -> Iterable[ast.AST]:
        """Walk a statement without descending into nested def/class bodies
        or into compound-statement bodies handled recursively above."""
        if isinstance(stmt, (ast.If, ast.While)):
            roots: List[ast.AST] = [stmt.test]
        elif isinstance(stmt, ast.For):
            roots = [stmt.iter]
        elif isinstance(stmt, ast.With):
            roots = [item.context_expr for item in stmt.items]
        elif isinstance(stmt, ast.Try):
            roots = []
        else:
            roots = [stmt]
        stack: List[ast.AST] = list(roots)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                stack.append(child)

    @staticmethod
    def _mod_args(node: ast.expr) -> List[ast.expr]:
        if isinstance(node, ast.Tuple):
            return list(node.elts)
        return [node]

    def _check_built(
        self,
        module: ModuleSource,
        site: ast.expr,
        fragments: List[str],
        interpolations: List[ast.expr],
        env: _TaintEnv,
        findings: List[Finding],
    ) -> None:
        text = " ".join(fragments)
        if not SQL_KEYWORD_RE.search(text):
            return
        for expr in interpolations:
            if _expr_taint(expr, env):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.rel,
                        line=expr.lineno,
                        col=expr.col_offset,
                        message=(
                            "raw identifier interpolated into SQL text; route it "
                            "through self._quote(self.table_name(...)) — only the "
                            "case-escaping helpers may feed identifier positions"
                        ),
                    )
                )
