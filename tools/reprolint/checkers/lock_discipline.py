"""``lock-discipline``: every ``self._connection`` read happens under the lock.

PR 5's deadlock came from exactly one missing discipline: SQLite's
connection mutex and the Python GIL were acquired in opposite orders by two
threads because one code path touched ``self._connection`` without holding
``self._connection_lock``.  The fix serialised *every* connection access
through that RLock — this checker keeps it that way.

The analysis is per class, intra-module:

1. For every class that mentions ``_connection_lock``, collect each method
   (and each function nested inside a method) and walk its body tracking
   whether execution is inside ``with self._connection_lock:``.
2. Record every *unlocked* ``self._connection`` use, and every intra-class
   call edge (``self.other()`` or a nested ``helper()``) tagged with whether
   the call site holds the lock.
3. A function is **reachable-unlocked** when it is a public/dunder entry
   point (minus the ``__init__`` allowlist — construction happens before the
   object is published), has no intra-class call sites at all, or is called
   without the lock from another reachable-unlocked function.
4. Violation = an unlocked ``self._connection`` use inside a
   reachable-unlocked function.  Private helpers whose every call site holds
   the lock are therefore fine, as is a nested ``flush_batch`` invoked only
   inside a locked region.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..framework import Checker, Finding, ModuleSource

LOCK_ATTR = "_connection_lock"
CONNECTION_ATTR = "_connection"
#: Methods allowed to touch the connection unlocked: the object is not yet
#: published to other threads while they run.
UNLOCKED_ALLOWLIST = frozenset({"__init__"})


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _acquires_lock(item: ast.withitem) -> bool:
    expr = item.context_expr
    if _is_self_attr(expr, LOCK_ATTR):
        return True
    # ``with self._connection_lock as lock:`` and ``self._lock()``-style
    # factories are not used in this codebase; keep the match strict so the
    # checker cannot be fooled by a similarly named attribute.
    return False


@dataclass
class _FunctionFacts:
    """What one method (or nested function) does with the connection."""

    qualname: str
    method_name: str  # enclosing method for nested functions, else itself
    is_nested: bool
    unlocked_uses: List[Tuple[int, int]] = field(default_factory=list)
    #: ``(callee short name, call site holds lock)`` edges.
    calls: List[Tuple[str, bool]] = field(default_factory=list)
    call_sites: int = 0  # how many times *this* function is called in-class


class _BodyWalker(ast.NodeVisitor):
    """Walk one function body tracking the ``with self._connection_lock`` depth."""

    def __init__(self, facts: _FunctionFacts, nested_names: Set[str]) -> None:
        self.facts = facts
        self.nested_names = nested_names
        self.lock_depth = 0

    def visit_With(self, node: ast.With) -> None:
        acquired = sum(1 for item in node.items if _acquires_lock(item))
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.lock_depth += acquired
        for stmt in node.body:
            self.visit(stmt)
        self.lock_depth -= acquired

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == CONNECTION_ATTR and _is_self_attr(node, CONNECTION_ATTR):
            if self.lock_depth == 0:
                self.facts.unlocked_uses.append((node.lineno, node.col_offset))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = ""
        if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
            if node.func.value.id == "self":
                callee = node.func.attr
        elif isinstance(node.func, ast.Name) and node.func.id in self.nested_names:
            callee = node.func.id
        if callee:
            self.facts.calls.append((callee, self.lock_depth > 0))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are analysed as their own nodes

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda body runs when *called*, which may be outside the lock;
        # treat its connection uses as belonging to the enclosing context
        # anyway (strictly conservative would be unlocked, but the codebase
        # has no connection-touching lambdas and flagging them here keeps
        # the rule simple).
        self.generic_visit(node)


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "every self._connection use in the SQLite stores holds "
        "self._connection_lock or is reachable only from locked callers"
    )
    include = ("storage/sqlbackend/", "sqlbackend/")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and self._class_in_scope(node):
                findings.extend(self._check_class(module, node))
        return findings

    @staticmethod
    def _class_in_scope(node: ast.ClassDef) -> bool:
        """Only classes that actually use the lock protocol are analysed."""
        return any(
            isinstance(sub, ast.Attribute) and sub.attr == LOCK_ATTR
            for sub in ast.walk(node)
        )

    def _check_class(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        functions: Dict[str, _FunctionFacts] = {}
        nodes: Dict[str, ast.AST] = {}

        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested = {
                child.name: child
                for child in ast.walk(stmt)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not stmt
            }
            facts = _FunctionFacts(
                qualname=stmt.name, method_name=stmt.name, is_nested=False
            )
            walker = _BodyWalker(facts, set(nested))
            for body_stmt in stmt.body:
                walker.visit(body_stmt)
            functions[stmt.name] = facts
            nodes[stmt.name] = stmt
            for nested_name, nested_node in nested.items():
                nested_facts = _FunctionFacts(
                    qualname=f"{stmt.name}.{nested_name}",
                    method_name=stmt.name,
                    is_nested=True,
                )
                nested_walker = _BodyWalker(nested_facts, set(nested))
                for body_stmt in nested_node.body:
                    nested_walker.visit(body_stmt)
                # Nested names can collide across methods; qualify them so
                # edges resolve within the right method below.
                functions[f"{stmt.name}.{nested_name}"] = nested_facts
                nodes[f"{stmt.name}.{nested_name}"] = nested_node

        # Resolve call edges: ``self.x`` -> method ``x``; bare ``x`` inside
        # method ``m`` -> nested ``m.x`` when it exists.
        edges: List[Tuple[str, str, bool]] = []  # caller qualname, callee qualname, locked
        for facts in functions.values():
            for callee, locked in facts.calls:
                if callee in functions:
                    target = callee
                elif f"{facts.method_name}.{callee}" in functions:
                    target = f"{facts.method_name}.{callee}"
                else:
                    continue
                edges.append((facts.qualname, target, locked))
                functions[target].call_sites += 1

        reachable_unlocked: Set[str] = set()
        for qualname, facts in functions.items():
            if facts.qualname.split(".")[0] in UNLOCKED_ALLOWLIST:
                continue
            public_entry = not facts.is_nested and (
                not qualname.startswith("_") or qualname.startswith("__")
            )
            if public_entry or facts.call_sites == 0:
                reachable_unlocked.add(qualname)

        changed = True
        while changed:
            changed = False
            for caller, target, locked in edges:
                if locked or caller not in reachable_unlocked:
                    continue
                if functions[target].method_name in UNLOCKED_ALLOWLIST:
                    continue
                if target not in reachable_unlocked:
                    reachable_unlocked.add(target)
                    changed = True

        for qualname in sorted(reachable_unlocked):
            facts = functions[qualname]
            if facts.method_name in UNLOCKED_ALLOWLIST:
                continue
            for line, col in facts.unlocked_uses:
                yield Finding(
                    rule=self.name,
                    path=module.rel,
                    line=line,
                    col=col,
                    message=(
                        f"{cls.name}.{qualname} reads self.{CONNECTION_ATTR} without "
                        f"holding self.{LOCK_ATTR} and is reachable from unlocked "
                        "callers; wrap the access in 'with self._connection_lock:' "
                        "(unlocked connection access is how the PR 5 GIL/SQLite-mutex "
                        "deadlock happened)"
                    ),
                )
