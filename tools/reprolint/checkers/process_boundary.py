"""``process-boundary``: only picklable values cross into worker processes.

``chase/parallel.py`` ships work to processes three ways: pipe messages
(``conn.send(...)``), pool submissions (``pool.submit(fn, *args)``), and the
``Process(target=..., args=(...))`` constructor.  PR 5 deliberately made
every crossing zero-pickle-weight: store *specs* (tuples of strings) travel,
live stores do not.  This checker keeps unpicklables out of those crossings:

* ``lambda`` and generator expressions anywhere in a payload — both fail to
  pickle at runtime, but only when that code path fires under the process
  pool (the serial and thread pools mask the bug).
* Names or attributes that look like live handles: ``*store``, ``*pool``,
  ``*lock``, ``*conn``/``*connection``, ``*cursor``.  The designed
  exceptions: ``store_spec`` (the picklable description of a store) is
  allowlisted everywhere, and connection-suffixed names are allowed inside
  ``Process(args=...)`` because handing the child its pipe end through
  process inheritance is exactly how the pipe is established.
* A ``lambda`` as the callable of ``submit`` (bound methods and functions
  pickle; lambdas never do).
* Exchange-channel payloads (``chase/exchange.py`` and the shuffle pools in
  ``chase/parallel.py``) must carry routing state as plain tuples: a name or
  attribute suffixed ``table``/``routing``/``router`` in any crossing is
  flagged — ship ``RoutingTable.heavy_routes`` (``HeavyRoute`` tuples) and
  rebuild the table worker-side.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..framework import Checker, Finding, ModuleSource

BANNED_SUFFIXES: Tuple[str, ...] = (
    "store",
    "pool",
    "lock",
    "conn",
    "connection",
    "cursor",
)
#: Names that end with a banned suffix but are picklable by design.
ALLOWLIST = frozenset({"store_spec", "spec"})
#: Suffixes additionally allowed inside ``Process(args=...)``: the child's
#: pipe end is *meant* to cross via fork/spawn inheritance.
PROCESS_ARG_ALLOWED_SUFFIXES: Tuple[str, ...] = ("conn", "connection")
#: Routing state suffixes: routing tables never cross a process boundary as
#: objects — only their plain-tuple ``heavy_routes`` projection travels.
ROUTING_SUFFIXES: Tuple[str, ...] = ("table", "routing", "router")
#: Routing-suffixed names that *are* the plain-tuple form.
ROUTING_ALLOWLIST = frozenset({"heavy_routes", "routes"})


def _handle_suffix(name: str, allowed: Tuple[str, ...] = ()) -> Optional[str]:
    lowered = name.lower()
    if lowered in ALLOWLIST:
        return None
    for suffix in BANNED_SUFFIXES:
        if lowered == suffix or lowered.endswith("_" + suffix) or lowered.endswith(suffix):
            if suffix in allowed:
                return None
            return suffix
    return None


def _routing_suffix(name: str) -> Optional[str]:
    lowered = name.lower()
    if lowered in ROUTING_ALLOWLIST:
        return None
    for suffix in ROUTING_SUFFIXES:
        if lowered == suffix or lowered.endswith(suffix):
            return suffix
    return None


class ProcessBoundaryChecker(Checker):
    name = "process-boundary"
    description = (
        "values crossing pipe sends, pool submissions, and Process() must be "
        "picklable: no lambdas, generators, or live store/connection/lock handles"
    )
    include = ("chase/parallel.py", "parallel.py", "chase/exchange.py", "exchange.py")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "send":
                for arg in node.args:
                    self._scan_payload(module, arg, "pipe send", (), findings)
            elif isinstance(func, ast.Attribute) and func.attr == "submit":
                if node.args:
                    self._check_submit_callable(module, node.args[0], findings)
                for arg in node.args[1:]:
                    self._scan_payload(module, arg, "pool submission", (), findings)
                for keyword in node.keywords:
                    if keyword.value is not None:
                        self._scan_payload(
                            module, keyword.value, "pool submission", (), findings
                        )
            elif isinstance(func, ast.Name) and func.id == "Process":
                for keyword in node.keywords:
                    if keyword.arg == "args" and keyword.value is not None:
                        self._scan_payload(
                            module,
                            keyword.value,
                            "Process args",
                            PROCESS_ARG_ALLOWED_SUFFIXES,
                            findings,
                        )
                    elif keyword.arg == "target" and isinstance(
                        keyword.value, ast.Lambda
                    ):
                        findings.append(
                            self._finding(
                                module,
                                keyword.value,
                                "Process target is a lambda; lambdas cannot be "
                                "pickled for spawn-based start methods — use a "
                                "module-level function",
                            )
                        )
        return findings

    def _check_submit_callable(
        self, module: ModuleSource, callee: ast.expr, findings: List[Finding]
    ) -> None:
        if isinstance(callee, ast.Lambda):
            findings.append(
                self._finding(
                    module,
                    callee,
                    "lambda submitted to a pool; lambdas cannot be pickled, so "
                    "this only works until the pool is process-backed — use a "
                    "module-level function or a bound method",
                )
            )

    def _scan_payload(
        self,
        module: ModuleSource,
        payload: ast.expr,
        crossing: str,
        allowed_suffixes: Tuple[str, ...],
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                findings.append(
                    self._finding(
                        module,
                        node,
                        f"lambda inside a {crossing} payload; lambdas cannot be "
                        "pickled across the process boundary",
                    )
                )
            elif isinstance(node, ast.GeneratorExp):
                findings.append(
                    self._finding(
                        module,
                        node,
                        f"generator expression inside a {crossing} payload; "
                        "generators cannot be pickled — materialise with "
                        "tuple(sorted(...)) first",
                    )
                )
            elif isinstance(node, ast.Name):
                suffix = _handle_suffix(node.id, allowed_suffixes)
                if suffix is not None:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"name '{node.id}' (suffix '{suffix}') inside a "
                            f"{crossing} payload looks like a live handle; send a "
                            "picklable spec (cf. store_spec) and rebuild the "
                            "handle inside the worker",
                        )
                    )
                    continue
                routing = _routing_suffix(node.id)
                if routing is not None:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"name '{node.id}' (suffix '{routing}') inside a "
                            f"{crossing} payload looks like a routing table; "
                            "routing state crosses the exchange only as plain "
                            "HeavyRoute tuples (RoutingTable.heavy_routes) — "
                            "rebuild the table inside the worker",
                        )
                    )
            elif isinstance(node, ast.Attribute):
                suffix = _handle_suffix(node.attr, allowed_suffixes)
                if suffix is not None:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"attribute '.{node.attr}' (suffix '{suffix}') inside "
                            f"a {crossing} payload looks like a live handle; send "
                            "a picklable spec and rebuild the handle inside the "
                            "worker",
                        )
                    )
                    continue
                routing = _routing_suffix(node.attr)
                if routing is not None:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"attribute '.{node.attr}' (suffix '{routing}') "
                            f"inside a {crossing} payload looks like a routing "
                            "table; routing state crosses the exchange only as "
                            "plain HeavyRoute tuples (RoutingTable.heavy_routes) "
                            "— rebuild the table inside the worker",
                        )
                    )

    def _finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
