"""The concrete reprolint checkers.

``ALL_CHECKERS`` is the registry the CLI runs; each entry is a
:class:`~tools.reprolint.framework.Checker` subclass instance.  Order is the
order findings are attributed in (findings themselves are sorted by location
before reporting, so registry order is cosmetic).
"""

from .determinism import DeterminismChecker
from .lock_discipline import LockDisciplineChecker
from .process_boundary import ProcessBoundaryChecker
from .sql_identifiers import SqlIdentifierChecker

ALL_CHECKERS = (
    LockDisciplineChecker(),
    DeterminismChecker(),
    ProcessBoundaryChecker(),
    SqlIdentifierChecker(),
)

__all__ = [
    "ALL_CHECKERS",
    "DeterminismChecker",
    "LockDisciplineChecker",
    "ProcessBoundaryChecker",
    "SqlIdentifierChecker",
]
