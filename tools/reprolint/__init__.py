"""``reprolint``: repo-specific static analysis for the chase engine's invariants.

The test suite proves the engines *currently* agree — byte-identical
``ChaseResult``s across strategies, backends, and worker counts — but each of
those guarantees rests on coding disciplines that dynamic tests only catch
when a violation happens to fire (the PR 5 GIL/SQLite-mutex deadlock
reproduced about one run in four).  This package checks the disciplines
themselves, statically, so a violation fails the lint on every run:

``lock-discipline``
    Every read of ``self._connection`` in the SQLite stores happens under
    ``self._connection_lock`` (or only ever on call paths that already hold
    it) — the invariant whose absence caused the PR 5 deadlock.
``determinism``
    No unordered ``set`` iteration and no wall-clock / randomness / address
    dependence on the code paths that produce chase results.
``process-boundary``
    Nothing unpicklable (lambdas, generators, live stores, connections,
    locks) is handed to a worker pipe, a pool submission, or a ``Process``.
``sql-identifier``
    SQL built by string interpolation in ``storage/sqlbackend/`` routes
    identifiers through the case-escaping helpers (``_quote`` /
    ``table_name`` / ``read_source``) and nothing else.

Run it from the repository root::

    python -m tools.reprolint src/repro
    python -m tools.reprolint src/repro --format json
    python -m tools.reprolint --plan-shape          # EXPLAIN-based plan audit
    python -m tools.reprolint src/repro --list-waivers

Waivers are inline comments with a mandatory justification::

    something_flagged()  # reprolint: disable=<rule> -- why this is safe

A waiver without justification text is itself a lint error.  See
``docs/invariants.md`` for the catalogue of enforced invariants.
"""

from .framework import (  # noqa: F401 (re-exported API)
    Checker,
    Finding,
    LintReport,
    ModuleSource,
    run_lint,
)

__version__ = "1.0"
