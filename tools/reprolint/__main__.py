"""CLI for reprolint: ``python -m tools.reprolint [paths...] [options]``.

Exit codes: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .checkers import ALL_CHECKERS
from .framework import LintReport, render_human, render_json, run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="static invariant checks for the chase engine",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro when static "
        "rules run; none needed for --plan-shape alone)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule names to run (default: all): "
        + ", ".join(checker.name for checker in ALL_CHECKERS),
    )
    parser.add_argument(
        "--plan-shape",
        action="store_true",
        help="also EXPLAIN every compiled statement family over representative "
        "schemas and flag full scans of relation tables",
    )
    parser.add_argument(
        "--no-static",
        action="store_true",
        help="skip the static AST rules (useful with --plan-shape)",
    )
    parser.add_argument(
        "--list-waivers",
        action="store_true",
        help="list every waiver in the scanned tree and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print waived findings in human output",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.plan_shape and args.no_static:
        print("reprolint: --no-static without --plan-shape leaves nothing to do",
              file=sys.stderr)
        return 2

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
        known = {checker.name for checker in ALL_CHECKERS}
        unknown = [rule for rule in rules if rule not in known]
        if unknown:
            print(
                f"reprolint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2

    report = LintReport()
    if not args.no_static:
        paths = [Path(path) for path in (args.paths or ["src/repro"])]
        try:
            report = run_lint(paths, ALL_CHECKERS, rules=rules)
        except FileNotFoundError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        except SyntaxError as exc:
            print(f"reprolint: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
                  file=sys.stderr)
            return 2

    if args.list_waivers:
        for waiver in report.waivers:
            marker = "used" if waiver.used else "UNUSED"
            print(
                f"{waiver.path}:{waiver.line}: [{','.join(waiver.rules)}] "
                f"({marker}) -- {waiver.justification or '<no justification>'}"
            )
        print(f"{len(report.waivers)} waiver(s)")
        return 0

    if args.plan_shape:
        from .planshape import run_plan_shape

        report.findings.extend(run_plan_shape())
        report.findings.sort(
            key=lambda finding: (finding.path, finding.line, finding.col, finding.rule)
        )

    if args.format == "json":
        render_json(report)
    else:
        render_human(report, verbose=args.verbose)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
